//===- verify/GraphVerifier.cpp - Post-S4/S5 DynDFG verification ----------===//

#include "verify/GraphVerifier.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <utility>

using namespace scorpio;
using namespace scorpio::verify;

namespace {

std::string nodeDesc(const DynDFG &G, NodeId Id) {
  const DfgNode &N = G.node(Id);
  std::string S = "u" + std::to_string(Id) + " (" + opKindName(N.Kind);
  if (!N.Label.empty())
    S += " '" + N.Label + "'";
  S += ")";
  return S;
}

/// True when \p Id is in range for \p G and names an alive node.
bool aliveIn(const DynDFG &G, NodeId Id) {
  return G.isValidNode(Id) && G.node(Id).Alive;
}

/// Recomputes the BFS level of every node of \p G from its alive
/// outputs, exactly as DynDFG::computeLevels defines it, without
/// touching \p G.  Index i holds the expected level of node i (-1 for
/// dead or unreachable nodes).
std::vector<int> expectedLevels(const DynDFG &G) {
  const size_t N = G.size();
  std::vector<int> Level(N, -1);
  std::deque<NodeId> Queue;
  for (size_t I = 0; I != N; ++I) {
    const DfgNode &DN = G.node(static_cast<NodeId>(I));
    if (DN.Alive && DN.IsOutput) {
      Level[I] = 0;
      Queue.push_back(static_cast<NodeId>(I));
    }
  }
  while (!Queue.empty()) {
    const NodeId V = Queue.front();
    Queue.pop_front();
    const int Next = Level[static_cast<size_t>(V)] + 1;
    for (NodeId P : G.node(V).Preds) {
      if (!aliveIn(G, P))
        continue; // G002 reports the bad edge; do not walk through it
      if (Level[static_cast<size_t>(P)] != -1)
        continue;
      Level[static_cast<size_t>(P)] = Next;
      Queue.push_back(P);
    }
  }
  return Level;
}

/// G002: every Pred/Succ id of an alive node names an alive in-range
/// node.  Returns true when the edge lists are safe to traverse.
bool checkEdges(const DynDFG &G, VerifyReport &R) {
  bool Clean = true;
  for (size_t I = 0; I != G.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const DfgNode &N = G.node(Id);
    if (!N.Alive)
      continue;
    const auto Check = [&](const std::vector<NodeId> &List, const char *Dir) {
      for (size_t A = 0; A != List.size(); ++A) {
        const NodeId E = List[A];
        if (aliveIn(G, E))
          continue;
        Clean = false;
        std::ostringstream M;
        M << nodeDesc(G, Id) << " " << Dir << "[" << A << "] = " << E << " ";
        M << (G.isValidNode(E) ? "references a dead node"
                               : "is outside the graph");
        R.add({RuleKind::GraphDanglingEdge, Id, static_cast<int>(A), M.str()});
      }
    };
    Check(N.Preds, "pred");
    Check(N.Succs, "succ");
  }
  return Clean;
}

/// G001: Preds and Succs describe the same multiset of edges.
void checkMirrors(const DynDFG &G, VerifyReport &R) {
  // Count each alive-to-alive edge (producer, consumer) as seen from the
  // consumer's Preds and from the producer's Succs; any multiplicity
  // difference means the two views disagree.
  std::map<std::pair<NodeId, NodeId>, std::pair<int, int>> Edges;
  for (size_t I = 0; I != G.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const DfgNode &N = G.node(Id);
    if (!N.Alive)
      continue;
    for (NodeId P : N.Preds)
      if (aliveIn(G, P))
        ++Edges[{P, Id}].first;
    for (NodeId S : N.Succs)
      if (aliveIn(G, S))
        ++Edges[{Id, S}].second;
  }
  for (const auto &[Edge, Counts] : Edges) {
    if (Counts.first == Counts.second)
      continue;
    std::ostringstream M;
    M << "edge " << nodeDesc(G, Edge.first) << " -> "
      << nodeDesc(G, Edge.second) << " appears " << Counts.first
      << "x in Preds but " << Counts.second << "x in Succs";
    R.add({RuleKind::MirrorInconsistency, Edge.second, -1, M.str()});
  }
}

/// G003: the alive subgraph is a DAG.  Iterative coloring DFS over the
/// Preds relation; a back edge into an in-progress node is a cycle.
void checkAcyclic(const DynDFG &G, VerifyReport &R) {
  enum : uint8_t { White, Grey, Black };
  const size_t N = G.size();
  std::vector<uint8_t> Color(N, White);
  // Frame: node plus the index of the next pred to visit.
  std::vector<std::pair<NodeId, size_t>> Stack;
  for (size_t Root = 0; Root != N; ++Root) {
    if (Color[Root] != White || !G.node(static_cast<NodeId>(Root)).Alive)
      continue;
    Stack.emplace_back(static_cast<NodeId>(Root), 0);
    Color[Root] = Grey;
    while (!Stack.empty()) {
      auto &[V, Next] = Stack.back();
      const std::vector<NodeId> &Preds = G.node(V).Preds;
      if (Next == Preds.size()) {
        Color[static_cast<size_t>(V)] = Black;
        Stack.pop_back();
        continue;
      }
      const NodeId P = Preds[Next++];
      if (!aliveIn(G, P))
        continue; // reported by G002
      if (Color[static_cast<size_t>(P)] == Grey) {
        std::ostringstream M;
        M << "back edge " << nodeDesc(G, V) << " -> " << nodeDesc(G, P)
          << " closes a cycle in the alive subgraph";
        R.add({RuleKind::GraphCycle, P, -1, M.str()});
        continue;
      }
      if (Color[static_cast<size_t>(P)] == White) {
        Color[static_cast<size_t>(P)] = Grey;
        Stack.emplace_back(P, 0);
      }
    }
  }
}

/// G004 + G005: stored levels match the recomputed BFS distance, and
/// (optionally, as a warning) every alive node reaches an output.
void checkLevels(const DynDFG &G, const GraphVerifierOptions &Options,
                 VerifyReport &R) {
  const std::vector<int> Expected = expectedLevels(G);
  for (size_t I = 0; I != G.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const DfgNode &N = G.node(Id);
    if (!N.Alive)
      continue;
    if (N.Level != Expected[I]) {
      std::ostringstream M;
      M << nodeDesc(G, Id) << " stores level " << N.Level
        << " but its BFS distance from the outputs is " << Expected[I];
      R.add({RuleKind::LevelInvariant, Id, -1, M.str()});
    }
    if (Options.CheckUnreachable && Expected[I] == -1) {
      std::ostringstream M;
      M << nodeDesc(G, Id)
        << " is alive but no registered output depends on it";
      R.add({RuleKind::UnreachableAlive, Id, -1, M.str()});
    }
  }
}

/// Set of ids that are alive outputs of \p G.
std::set<NodeId> aliveOutputs(const DynDFG &G) {
  std::set<NodeId> Out;
  for (size_t I = 0; I != G.size(); ++I) {
    const DfgNode &N = G.node(static_cast<NodeId>(I));
    if (N.Alive && N.IsOutput)
      Out.insert(static_cast<NodeId>(I));
  }
  return Out;
}

} // namespace

VerifyReport verify::verifyGraph(const DynDFG &G,
                                 const GraphVerifierOptions &Options) {
  VerifyReport R(Options.MaxFindingsPerRule);
  const bool EdgesClean = checkEdges(G, R);
  checkMirrors(G, R);
  if (EdgesClean)
    checkAcyclic(G, R);
  checkLevels(G, Options, R);
  return R;
}

VerifyReport verify::verifySimplify(const DynDFG &Before, const DynDFG &After,
                                    const GraphVerifierOptions &Options) {
  VerifyReport R(Options.MaxFindingsPerRule);
  if (Before.size() != After.size()) {
    std::ostringstream M;
    M << "simplify changed the node id space: " << Before.size()
      << " nodes before, " << After.size() << " after";
    R.add({RuleKind::OutputSetChanged, InvalidNodeId, -1, M.str()});
    return R; // the id spaces are incomparable; nothing else is checkable
  }
  const size_t N = Before.size();

  // G006: the alive output set survives verbatim.
  const std::set<NodeId> OutB = aliveOutputs(Before);
  const std::set<NodeId> OutA = aliveOutputs(After);
  for (NodeId Id : OutB)
    if (!OutA.count(Id)) {
      R.add({RuleKind::OutputSetChanged, Id, -1,
             "output " + nodeDesc(Before, Id) + " did not survive simplify"});
    }
  for (NodeId Id : OutA)
    if (!OutB.count(Id)) {
      R.add({RuleKind::OutputSetChanged, Id, -1,
             "simplify introduced output " + nodeDesc(After, Id)});
    }

  // Collapsed = alive before, dead after.  Anything dead before must
  // stay dead (a revived node is not a collapse but it rewires the
  // graph just the same).
  std::vector<bool> Collapsed(N, false);
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const bool B = Before.node(Id).Alive, A = After.node(Id).Alive;
    if (B && !A)
      Collapsed[I] = true;
    else if (!B && A)
      R.add({RuleKind::InvalidCollapse, Id, -1,
             "dead node " + nodeDesc(After, Id) + " was revived by simplify"});
  }

  // G007a: every collapsed node satisfies the S4 chain-link criterion,
  // judged against Before: an accumulative non-output non-input
  // operation whose unique alive consumer performs the same operation.
  for (size_t I = 0; I != N; ++I) {
    if (!Collapsed[I])
      continue;
    const NodeId Id = static_cast<NodeId>(I);
    const DfgNode &V = Before.node(Id);
    std::string Why;
    if (V.IsOutput)
      Why = "is a registered output";
    else if (V.Kind == OpKind::Input)
      Why = "is an input";
    else if (!isAccumulativeOp(V.Kind))
      Why = "is not an accumulative operation";
    else if (V.Succs.size() != 1)
      Why = "has " + std::to_string(V.Succs.size()) +
            " consumers instead of exactly one";
    else if (!aliveIn(Before, V.Succs[0]) ||
             Before.node(V.Succs[0]).Kind != V.Kind)
      Why = "its consumer does not perform the same operation";
    if (!Why.empty())
      R.add({RuleKind::InvalidCollapse, Id, -1,
             "collapsed node " + nodeDesc(Before, Id) + " " + Why +
                 "; it is not a res = res + term chain link"});
  }

  // Head of a collapsed node: follow the unique-consumer chain in
  // Before until a surviving node is reached.  Walks are bounded by N
  // so a forged cyclic chain cannot hang the verifier.
  const auto HeadOf = [&](NodeId Id) {
    for (size_t Steps = 0; Steps != N; ++Steps) {
      if (!Collapsed[static_cast<size_t>(Id)])
        return Id;
      const std::vector<NodeId> &Succs = Before.node(Id).Succs;
      if (Succs.size() != 1 || !Before.isValidNode(Succs[0]))
        return InvalidNodeId;
      Id = Succs[0];
    }
    return InvalidNodeId; // cyclic forged chain
  };

  // G007b: operand re-attachment.  For every surviving node H, the new
  // pred set must be exactly the surviving external operands of H plus
  // of every chain collapsed into H.
  std::vector<std::set<NodeId>> Expected(N);
  for (size_t I = 0; I != N; ++I) {
    if (!Before.node(static_cast<NodeId>(I)).Alive)
      continue;
    const NodeId Target = HeadOf(static_cast<NodeId>(I));
    if (Target == InvalidNodeId)
      continue; // already reported as an invalid collapse above
    for (NodeId P : Before.node(static_cast<NodeId>(I)).Preds)
      if (Before.isValidNode(P) && !Collapsed[static_cast<size_t>(P)])
        Expected[static_cast<size_t>(Target)].insert(P);
  }
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    if (!After.node(Id).Alive || !Before.node(Id).Alive)
      continue;
    const std::vector<NodeId> &Got = After.node(Id).Preds;
    const std::set<NodeId> GotSet(Got.begin(), Got.end());
    if (GotSet != Expected[I]) {
      std::ostringstream M;
      M << nodeDesc(After, Id) << " has " << GotSet.size()
        << " operands after simplify but the collapsed chains imply "
        << Expected[I].size() << "; the re-attachment sets differ";
      R.add({RuleKind::InvalidCollapse, Id, -1, M.str()});
    }
  }

  // G008: significance is moved, never created or destroyed.  Surviving
  // nodes keep their recorded significance, and the output mass — the
  // Eq.-11 quantity every report normalizes by — is conserved.
  const auto Differs = [&](double A, double B) {
    return std::abs(A - B) >
           Options.MassTolerance * std::max(1.0, std::abs(B));
  };
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    if (!Before.node(Id).Alive || !After.node(Id).Alive)
      continue;
    if (Differs(After.node(Id).Significance, Before.node(Id).Significance)) {
      std::ostringstream M;
      M << nodeDesc(After, Id) << " significance changed from "
        << Before.node(Id).Significance << " to "
        << After.node(Id).Significance << " across simplify";
      R.add({RuleKind::SignificanceMassLoss, Id, -1, M.str()});
    }
  }
  double MassB = 0.0, MassA = 0.0;
  for (NodeId Id : OutB)
    MassB += Before.node(Id).Significance;
  for (NodeId Id : OutA)
    MassA += After.node(Id).Significance;
  if (Differs(MassA, MassB)) {
    std::ostringstream M;
    M << "total alive output significance changed from " << MassB << " to "
      << MassA << " across simplify";
    R.add({RuleKind::SignificanceMassLoss, InvalidNodeId, -1, M.str()});
  }
  return R;
}

VerifyReport verify::verifyVarianceLevel(const DynDFG &G, int ReportedLevel,
                                         double Delta, double Divisor,
                                         const GraphVerifierOptions &Options) {
  VerifyReport R(Options.MaxFindingsPerRule);
  // Independent re-scan of the S5 search: first level in [1, height)
  // whose (normalized) significances have population variance > Delta.
  int Expected = -1;
  const int H = G.height();
  for (int L = 1; L < H; ++L) {
    std::vector<double> Sig = G.significancesAtLevel(L);
    if (Sig.size() < 2)
      continue;
    if (Divisor != 1.0)
      for (double &S : Sig)
        S /= Divisor;
    if (variance(Sig) > Delta) {
      Expected = L;
      break;
    }
  }
  if (Expected != ReportedLevel) {
    std::ostringstream M;
    M << "reported significance-variance level " << ReportedLevel
      << " but re-scanning the per-level significances (delta=" << Delta
      << ", divisor=" << Divisor << ") yields " << Expected;
    R.add({RuleKind::VarianceLevelMismatch, InvalidNodeId, -1, M.str()});
  }
  return R;
}

VerifyReport verify::verifyTruncation(const DynDFG &G, int MaxLevel,
                                      const DynDFG &Truncated,
                                      const GraphVerifierOptions &Options) {
  VerifyReport R(Options.MaxFindingsPerRule);
  if (G.size() != Truncated.size()) {
    std::ostringstream M;
    M << "truncatedAbove(" << MaxLevel << ") changed the node id space: "
      << G.size() << " nodes before, " << Truncated.size() << " after";
    R.add({RuleKind::TruncationNotMonotone, InvalidNodeId, -1, M.str()});
    return R;
  }
  const auto Survives = [&](NodeId Id) {
    const DfgNode &N = G.node(Id);
    return N.Alive && N.Level >= 0 && N.Level <= MaxLevel;
  };
  for (size_t I = 0; I != G.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const bool Want = Survives(Id);
    const DfgNode &T = Truncated.node(Id);
    if (T.Alive != Want) {
      std::ostringstream M;
      M << nodeDesc(G, Id) << " at level " << G.node(Id).Level << " is "
        << (T.Alive ? "alive" : "dead") << " after truncatedAbove("
        << MaxLevel << ") but the level prefix says it must be "
        << (Want ? "alive" : "dead");
      R.add({RuleKind::TruncationNotMonotone, Id, -1, M.str()});
      continue;
    }
    if (!Want)
      continue;
    const DfgNode &S = G.node(Id);
    // Payloads are copied, never recomputed: exact comparison.
    const bool PayloadSame = T.Kind == S.Kind && T.Value == S.Value &&
                             T.Significance == S.Significance &&
                             T.Level == S.Level && T.Label == S.Label &&
                             T.IsOutput == S.IsOutput;
    if (!PayloadSame) {
      R.add({RuleKind::TruncationNotMonotone, Id, -1,
             "payload of " + nodeDesc(G, Id) +
                 " changed across truncatedAbove(" +
                 std::to_string(MaxLevel) + ")"});
      continue;
    }
    // Edges must be the source edges filtered to survivors, in order.
    const auto Filtered = [&](const std::vector<NodeId> &List) {
      std::vector<NodeId> Out;
      for (NodeId E : List)
        if (G.isValidNode(E) && Survives(E))
          Out.push_back(E);
      return Out;
    };
    if (T.Preds != Filtered(S.Preds) || T.Succs != Filtered(S.Succs)) {
      R.add({RuleKind::TruncationNotMonotone, Id, -1,
             "edge lists of " + nodeDesc(G, Id) +
                 " are not the survivor-filtered source edges after "
                 "truncatedAbove(" +
                 std::to_string(MaxLevel) + ")"});
    }
  }
  return R;
}

VerifyReport verify::auditGraphPipeline(
    const Tape &T, const std::vector<double> &Significance,
    const std::map<NodeId, std::string> &Labels,
    const std::vector<NodeId> &Outputs, double Delta, double Divisor,
    const GraphVerifierOptions &Options) {
  VerifyReport R(Options.MaxFindingsPerRule);

  // Post-fromTape structural audit.
  DynDFG G = DynDFG::fromTape(T, Significance, Labels, Outputs);
  R.merge(verifyGraph(G, Options));

  // S4 audit: simplify against a pristine copy.  The post-simplify
  // structural re-check drops the unreachable warning so one unread
  // input does not fire G005 per pipeline stage.
  const DynDFG BeforeS4 = G;
  G.simplify();
  R.merge(verifySimplify(BeforeS4, G, Options));
  GraphVerifierOptions PostS4 = Options;
  PostS4.CheckUnreachable = false;
  R.merge(verifyGraph(G, PostS4));

  // S5 audit.
  const int Level = G.findSignificanceVarianceLevel(Delta, Divisor);
  R.merge(verifyVarianceLevel(G, Level, Delta, Divisor, Options));

  // Truncation audit over a few representative cut levels: the boundary
  // the S5 search suggests (the paper's G.removeAbove(L+1)), the
  // outputs-only prefix, and the full height.
  std::vector<int> Cuts;
  if (Level >= 0)
    Cuts.push_back(Level);
  Cuts.push_back(0);
  if (G.height() > 1)
    Cuts.push_back(G.height() - 1);
  std::sort(Cuts.begin(), Cuts.end());
  Cuts.erase(std::unique(Cuts.begin(), Cuts.end()), Cuts.end());
  if (Options.MaxTruncationSamples >= 0 &&
      Cuts.size() > static_cast<size_t>(Options.MaxTruncationSamples))
    Cuts.resize(static_cast<size_t>(Options.MaxTruncationSamples));
  for (int Cut : Cuts)
    R.merge(verifyTruncation(G, Cut, G.truncatedAbove(Cut), Options));
  return R;
}
