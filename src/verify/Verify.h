//===- verify/Verify.h - Rule catalog and findings of scorpio-lint --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rule catalog and finding/report types shared by the tape verifier
/// (structural IR invariants, TapeVerifier.h) and the approximation-
/// safety linter (numeric-hazard heuristics, Lint.h).
///
/// The paper's Algorithm 1 trusts the recorded DynDFG end to end:
/// interval partials (S3), aggregation-chain simplification (S4) and the
/// significance-variance search (S5) all silently misbehave on a
/// malformed tape, and a kernel that is numerically unsafe under
/// interval evaluation (a zero-straddling divisor, an exploding partial)
/// produces `[-inf, inf]` significances with no hint *why*.  Following
/// the compiler-style analysis-pass model of CHEF-FP, every check is a
/// catalogued rule with a stable ID (`SCORPIO-Exxx` structural errors,
/// `SCORPIO-Wxxx` approximation-safety warnings) so findings can be
/// baselined, diffed and exported as SARIF.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_VERIFY_VERIFY_H
#define SCORPIO_VERIFY_VERIFY_H

#include "tape/Tape.h"

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace scorpio {

class JsonWriter;

namespace verify {

/// Severity of a rule (maps to the SARIF "level" property).
enum class Severity : uint8_t { Error, Warning };

/// Stable mnemonic of \p S: "error" or "warning".
const char *severityName(Severity S);

/// Every rule scorpio-lint knows, in catalog order.  The enumerator
/// value is the index into ruleCatalog().
enum class RuleKind : uint8_t {
  // Structural IR invariants (TapeVerifier) — a tape violating one of
  // these is malformed and every downstream result is garbage.
  DanglingArgument,      ///< SCORPIO-E001: argument id outside the tape
  NonTopologicalArgument,///< SCORPIO-E002: argument id >= node id
  ArityMismatch,         ///< SCORPIO-E003: edge count inconsistent with OpKind
  MalformedPartial,      ///< SCORPIO-E004: NaN / inverted partial bounds
  MalformedValue,        ///< SCORPIO-E005: NaN / inverted value bounds
  InputKindMismatch,     ///< SCORPIO-E006: registered input not OpKind::Input
  InvalidOutput,         ///< SCORPIO-E007: output id not a recorded node
  BatchSweepMismatch,    ///< SCORPIO-E008: batch lane != dedicated sweep
  // Approximation-safety heuristics (Lint) — the tape is well-formed
  // but the kernel is hazardous under interval evaluation.
  ZeroStraddlingOperand, ///< SCORPIO-W001: div/log/sqrt operand spans 0
  UnboundedPartial,      ///< SCORPIO-W002: infinite local partial
  WidthAmplification,    ///< SCORPIO-W003: node widens inputs > threshold
  InterleavedAccumulation,///< SCORPIO-W004: S4 cannot collapse the chain
  DeadSignificance,      ///< SCORPIO-W005: input with identically-zero adjoint
  UnregisteredInput,     ///< SCORPIO-W006: tape input never registered
  FloatingInput,         ///< SCORPIO-W007: input with no consumers
  // Graph invariants (GraphVerifier) — phase-2 checks over the DynDFG
  // produced by fromTape and transformed by S4 (simplify), the level
  // BFS and S5 (findSignificanceVarianceLevel).  Appended after the
  // W rules; never renumber.
  MirrorInconsistency,   ///< SCORPIO-G001: Preds/Succs are not mirrors
  GraphDanglingEdge,     ///< SCORPIO-G002: graph edge out of range / dead
  GraphCycle,            ///< SCORPIO-G003: alive subgraph contains a cycle
  LevelInvariant,        ///< SCORPIO-G004: levels are not the BFS distance
  UnreachableAlive,      ///< SCORPIO-G005: alive node reaches no output
  OutputSetChanged,      ///< SCORPIO-G006: simplify changed the output set
  InvalidCollapse,       ///< SCORPIO-G007: collapsed node was no chain link
  SignificanceMassLoss,  ///< SCORPIO-G008: simplify lost significance mass
  VarianceLevelMismatch, ///< SCORPIO-G009: S5 level not reproducible
  TruncationNotMonotone, ///< SCORPIO-G010: truncatedAbove kept/dropped wrong
  // Abstract-interpretation cross-validation (AbsInt) — a second,
  // independent derivation of enclosures and significance bounds from
  // the recorded inputs alone.  A well-formed tape can still carry
  // forged or stale numbers; these rules catch results the transfer
  // functions cannot produce.  Appended after the G rules; never
  // renumber.
  ValueEscapesEnclosure,   ///< SCORPIO-A001: recorded value outside abstract
  PartialEscapesEnclosure, ///< SCORPIO-A002: recorded partial outside abstract
  SignificanceAboveBound,  ///< SCORPIO-A003: dynamic significance > static bound
  StoredReportAboveBound,  ///< SCORPIO-A004: stored/cached report > static bound
  StaticallyDeadEdge,      ///< SCORPIO-A005: node cut off by zero-partial edges
  HiddenZeroDivisor,       ///< SCORPIO-A006: divisor must straddle 0, claims not
  ConstantFoldable,        ///< SCORPIO-A007: point-valued subgraph re-evaluated
  CommonSubexpression,     ///< SCORPIO-A008: identical node recorded twice
  // Floating-point rounding-error cross-validation and mixed-precision
  // lints (FpError) — the CHEF-FP-style backend's half-ulp error
  // contributions audited against independently re-derived static
  // bounds (the A-rule trust model applied to the FP-error family) plus
  // precision-demotion advice.  Appended after the A rules; never
  // renumber.
  FpContributionAboveBound, ///< SCORPIO-F001: dynamic FP-error contribution > static bound
  StoredFpErrorAboveBound,  ///< SCORPIO-F002: stored/cached FP-error report > static bound
  DeadNodeNonzeroError,     ///< SCORPIO-F003: significance-dead node with nonzero FP error
  StoredTotalAboveBound,    ///< SCORPIO-F004: stored total FP error > static total bound
  FloatDemotableTask,       ///< SCORPIO-F005: task level safe to demote to float
  ErrorDominatingNode,      ///< SCORPIO-F006: one node dominates the FP error budget
  TotalErrorAboveTolerance, ///< SCORPIO-F007: total FP error bound above tolerance
  DemotionBlockedByDominator,///< SCORPIO-F008: level misses demotion only due to one node
};

inline constexpr size_t NumRules =
    static_cast<size_t>(RuleKind::DemotionBlockedByDominator) + 1;

/// Immutable catalog entry for one rule.
struct Rule {
  RuleKind Kind;
  Severity Sev;
  /// Stable identifier, "SCORPIO-E001" ... — never renumber.
  const char *Id;
  /// Short kebab-case name ("dangling-argument").
  const char *Name;
  /// One-line summary (SARIF shortDescription).
  const char *Summary;
  /// Fuller help text with the paper/pipeline reference (SARIF
  /// fullDescription).
  const char *Help;
};

/// The full catalog, indexed by RuleKind enumerator value.
const Rule &ruleInfo(RuleKind K);

/// All rules in catalog order (for report headers and SARIF
/// tool.driver.rules).
const std::vector<Rule> &ruleCatalog();

/// One verifier/linter finding with NodeId provenance.
struct Finding {
  RuleKind Kind = RuleKind::DanglingArgument;
  /// Offending tape node (InvalidNodeId for tape-global findings such as
  /// an out-of-range registered output).
  NodeId Node = InvalidNodeId;
  /// Offending argument slot of Node, or -1 when the finding concerns
  /// the node as a whole.
  int ArgIndex = -1;
  /// Human-readable one-liner naming the concrete violation.
  std::string Message;
  /// Optional rewrite suggestion ("reuse u12 instead of recomputing");
  /// exported as a SARIF fix.  Empty for findings with no repair.
  std::string FixIt;

  const Rule &rule() const { return ruleInfo(Kind); }
  Severity severity() const { return rule().Sev; }
};

/// The result of running the verifier and/or linter over one tape:
/// findings (capped per rule so a pathological tape cannot produce a
/// gigabyte of reports) plus exact per-rule fire counts.
class VerifyReport {
public:
  /// Per-rule cap on *stored* findings; counts keep counting beyond it.
  explicit VerifyReport(size_t MaxFindingsPerRule = 32)
      : MaxPerRule(MaxFindingsPerRule), CountByRule(NumRules, 0) {}

  /// Records a finding (stores it unless the per-rule cap is reached).
  void add(Finding F);

  const std::vector<Finding> &findings() const { return Stored; }

  /// Exact number of times \p K fired (including findings dropped by the
  /// storage cap).
  size_t countOf(RuleKind K) const {
    return CountByRule[static_cast<size_t>(K)];
  }

  /// Total findings of the given severity (exact, cap-independent).
  size_t errorCount() const;
  size_t warningCount() const;
  bool hasErrors() const { return errorCount() != 0; }

  /// Merges \p Other into this report (counts add; stored findings
  /// append subject to this report's cap).  A non-empty
  /// \p MessagePrefix is prepended to every carried-over finding
  /// message — ParallelAnalysis uses "shard-name: " so merged per-shard
  /// findings keep their provenance.
  void merge(const VerifyReport &Other, const std::string &MessagePrefix = "");

  /// Writes the report as one JSON object: per-rule counts plus the
  /// stored findings with node provenance.
  void writeJson(JsonWriter &J) const;
  void writeJson(std::ostream &OS) const;

private:
  size_t MaxPerRule;
  std::vector<Finding> Stored;
  std::vector<size_t> CountByRule;
};

} // namespace verify
} // namespace scorpio

#endif // SCORPIO_VERIFY_VERIFY_H
