//===- verify/Sarif.cpp - SARIF 2.1.0 export ------------------------------===//

#include "verify/Sarif.h"

#include "support/Json.h"

#include <ostream>

using namespace scorpio;
using namespace scorpio::verify;

void verify::writeSarif(std::ostream &OS,
                        const std::vector<SarifEntry> &Entries,
                        const std::string &ToolVersion) {
  JsonWriter J(OS);
  J.beginObject();
  J.key("$schema").value(
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json");
  J.key("version").value("2.1.0");
  J.key("runs").beginArray();
  J.beginObject();

  J.key("tool").beginObject();
  J.key("driver").beginObject();
  J.key("name").value("scorpio-lint");
  J.key("informationUri")
      .value("https://example.org/scorpio/verify (CGO 2016 significance "
             "analysis, static verification pass)");
  J.key("version").value(ToolVersion);
  J.key("rules").beginArray();
  for (const Rule &R : ruleCatalog()) {
    J.beginObject();
    J.key("id").value(R.Id);
    J.key("name").value(R.Name);
    J.key("shortDescription").beginObject();
    J.key("text").value(R.Summary);
    J.endObject();
    J.key("fullDescription").beginObject();
    J.key("text").value(R.Help);
    J.endObject();
    J.key("defaultConfiguration").beginObject();
    J.key("level").value(severityName(R.Sev));
    J.endObject();
    J.endObject();
  }
  J.endArray();
  J.endObject(); // driver
  J.endObject(); // tool

  J.key("results").beginArray();
  for (const SarifEntry &E : Entries) {
    if (!E.Report)
      continue;
    for (const Finding &F : E.Report->findings()) {
      const Rule &R = F.rule();
      J.beginObject();
      J.key("ruleId").value(R.Id);
      J.key("ruleIndex")
          .value(static_cast<long long>(static_cast<size_t>(F.Kind)));
      J.key("level").value(severityName(R.Sev));
      J.key("message").beginObject();
      J.key("text").value("[" + E.Subject + "] " + F.Message);
      J.endObject();
      J.key("locations").beginArray();
      J.beginObject();
      J.key("logicalLocations").beginArray();
      J.beginObject();
      const std::string NodeName =
          F.Node == InvalidNodeId ? std::string("tape")
                                  : "u" + std::to_string(F.Node);
      J.key("name").value(NodeName);
      J.key("fullyQualifiedName").value(E.Subject + "/" + NodeName);
      J.key("kind").value("element");
      J.endObject();
      J.endArray();
      J.endObject();
      J.endArray();
      // Rewrite suggestions (SCORPIO-A007/A008 fix-its) export as a
      // SARIF fix with a description; we have no physical source
      // locations, so the suggestion is textual.
      if (!F.FixIt.empty()) {
        J.key("fixes").beginArray();
        J.beginObject();
        J.key("description").beginObject();
        J.key("text").value(F.FixIt);
        J.endObject();
        J.endObject();
        J.endArray();
      }
      J.endObject();
    }
  }
  J.endArray();

  J.endObject(); // run
  J.endArray();  // runs
  J.endObject();
  OS << "\n";
}

void verify::writeSarif(std::ostream &OS, const std::string &Subject,
                        const VerifyReport &Report,
                        const std::string &ToolVersion) {
  writeSarif(OS, {{Subject, &Report}}, ToolVersion);
}

std::map<NodeId, std::string> verify::dotHighlights(
    const VerifyReport &Report) {
  std::map<NodeId, std::string> Colors;
  for (const Finding &F : Report.findings()) {
    if (F.Node == InvalidNodeId)
      continue;
    // Errors dominate warnings when a node carries both.
    const bool IsError = F.severity() == Severity::Error;
    auto [It, Inserted] = Colors.emplace(
        F.Node, IsError ? "lightcoral" : "orange");
    if (!Inserted && IsError)
      It->second = "lightcoral";
  }
  return Colors;
}
