//===- verify/Verify.cpp - Rule catalog and findings ----------------------===//

#include "verify/Verify.h"

#include "support/Json.h"

#include <cassert>
#include <ostream>

using namespace scorpio;
using namespace scorpio::verify;

const char *verify::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

const std::vector<Rule> &verify::ruleCatalog() {
  static const std::vector<Rule> Catalog = {
      {RuleKind::DanglingArgument, Severity::Error, "SCORPIO-E001",
       "dangling-argument",
       "node argument id does not name a recorded tape node",
       "Every recorded edge must point at an existing node; a dangling "
       "id makes the reverse sweep (Eq. 8) read or scatter out of "
       "bounds."},
      {RuleKind::NonTopologicalArgument, Severity::Error, "SCORPIO-E002",
       "nontopological-argument",
       "node argument id is not strictly smaller than the node id",
       "The tape is an append-only topological order of the DynDFG "
       "(Section 2.3); a forward or self reference breaks the single "
       "backward pass of the adjoint sweep."},
      {RuleKind::ArityMismatch, Severity::Error, "SCORPIO-E003",
       "arity-mismatch",
       "recorded edge count is inconsistent with the operation kind",
       "An Input must have no edges, a unary operation exactly one, a "
       "binary operation one or two (passive constant operands are not "
       "recorded).  Any other shape corrupts partial attribution."},
      {RuleKind::MalformedPartial, Severity::Error, "SCORPIO-E004",
       "malformed-partial",
       "interval local partial has NaN or inverted bounds",
       "Local partials d(phi_j)/d(u_i) are the edge weights of the "
       "DynDFG (Figure 1a); a NaN or inverted enclosure violates the "
       "containment contract (Eq. 4-6) and poisons every adjoint "
       "downstream."},
      {RuleKind::MalformedValue, Severity::Error, "SCORPIO-E005",
       "malformed-value",
       "interval value has NaN or inverted bounds",
       "Node enclosures [u_j] feed the Eq.-11 significance product; a "
       "NaN or inverted enclosure is not a valid interval."},
      {RuleKind::InputKindMismatch, Severity::Error, "SCORPIO-E006",
       "input-kind-mismatch",
       "registered input node is not an Input operation",
       "The tape's input list must reference OpKind::Input nodes "
       "(paper step S2); anything else means the registration "
       "machinery and the tape disagree about what the inputs are."},
      {RuleKind::InvalidOutput, Severity::Error, "SCORPIO-E007",
       "invalid-output",
       "registered output id does not name a recorded tape node",
       "Outputs seed the reverse sweep (step S1/ANALYSE); seeding a "
       "nonexistent node either crashes or silently analyses the wrong "
       "graph."},
      {RuleKind::BatchSweepMismatch, Severity::Error, "SCORPIO-E008",
       "batch-sweep-mismatch",
       "a reverseSweepBatch lane differs from the dedicated sweep",
       "Vector-adjoint lanes are documented to be bit-identical to "
       "per-output scalar sweeps; a mismatch means the batched kernel "
       "and the scalar kernel disagree and PerOutput significances "
       "depend on BatchWidth."},
      {RuleKind::ZeroStraddlingOperand, Severity::Warning, "SCORPIO-W001",
       "zero-straddling-operand",
       "div/log/sqrt operand interval spans a domain boundary",
       "A divisor containing zero (or a log/sqrt operand reaching "
       "non-positive values) forces the interval result to explode to "
       "an unbounded enclosure (Section 2.2); every downstream "
       "significance becomes the worst case.  Narrow the input ranges "
       "or use a dependency-safe primitive (cf. tanOverX)."},
      {RuleKind::UnboundedPartial, Severity::Warning, "SCORPIO-W002",
       "unbounded-partial",
       "interval local partial is unbounded (derivative blow-up)",
       "An infinite local partial (1/x at a zero-straddling x, tan at "
       "a pole) saturates the interval adjoint product of Eq. 8-9 and "
       "masks the relative significance ranking the analysis exists to "
       "produce."},
      {RuleKind::WidthAmplification, Severity::Warning, "SCORPIO-W003",
       "width-amplification",
       "node widens its operand enclosures beyond the threshold",
       "A single operation whose result width exceeds "
       "WidthAmplificationThreshold times its widest operand is where "
       "the interval analysis loses precision (the overestimation the "
       "paper cautions about for Eq. 11); a candidate for range "
       "splitting (SplitAnalysis) or kernel restructuring."},
      {RuleKind::InterleavedAccumulation, Severity::Warning, "SCORPIO-W004",
       "interleaved-accumulation",
       "aggregation chain node has interleaved consumers; S4 cannot "
       "collapse it",
       "Step S4 collapses a self-referential accumulation (res = res + "
       "term) only when each chain node has exactly one consumer of "
       "the same kind.  Reading an intermediate accumulator value "
       "elsewhere keeps the whole chain as graph levels, which skews "
       "the S5 significance-variance level search."},
      {RuleKind::DeadSignificance, Severity::Warning, "SCORPIO-W005",
       "dead-significance",
       "registered input has an identically-zero adjoint",
       "No registered output depends on this input (its adjoint is "
       "exactly [0, 0] for every output seed): its significance is "
       "identically zero.  Either the registration is stale or the "
       "kernel ignores the input — both make the significance report "
       "misleading."},
      {RuleKind::UnregisteredInput, Severity::Warning, "SCORPIO-W006",
       "unregistered-input",
       "tape input node was never registered with the analysis",
       "An input recorded directly (IAValue::input) without "
       "Analysis::registerInput has no name: its significance cannot "
       "be attributed in reports, and the paper's S2 profiling step "
       "never validated its range."},
      {RuleKind::FloatingInput, Severity::Warning, "SCORPIO-W007",
       "floating-input",
       "input node has no consumers",
       "An input no operation ever reads contributes nothing to any "
       "output; it usually indicates a registration typo or dead "
       "kernel code."},
      {RuleKind::MirrorInconsistency, Severity::Error, "SCORPIO-G001",
       "mirror-inconsistency",
       "Preds and Succs adjacency lists are not multiplicity-consistent "
       "mirrors",
       "The DynDFG stores each edge twice (consumer's Preds, producer's "
       "Succs); if the two views disagree, the level BFS (which walks "
       "Preds) and simplify (which walks Succs) operate on different "
       "graphs."},
      {RuleKind::GraphDanglingEdge, Severity::Error, "SCORPIO-G002",
       "graph-dangling-edge",
       "graph edge references an out-of-range or dead node",
       "Every Pred/Succ id of an alive node must name an alive node "
       "inside the graph; an edge into a collapsed (dead) or "
       "nonexistent node makes every traversal — levels, truncation, "
       "DOT export — undefined."},
      {RuleKind::GraphCycle, Severity::Error, "SCORPIO-G003",
       "graph-cycle",
       "the alive subgraph contains a cycle",
       "The DynDFG is the unrolled dataflow of a straight-line tape and "
       "must be a DAG; a cycle means fromTape or simplify corrupted "
       "the edge lists, and the BFS level assignment (step S5) would "
       "never produce a valid distance function over it."},
      {RuleKind::LevelInvariant, Severity::Error, "SCORPIO-G004",
       "level-invariant",
       "stored node levels are not the BFS distance from the outputs",
       "Levels drive the entire S5 phase: outputs sit at level 0, every "
       "other reachable alive node at 1 + min over its consumers, and "
       "unreachable nodes at -1.  A mis-levelled graph skews "
       "nodesAtLevel, the variance search and truncatedAbove alike."},
      {RuleKind::UnreachableAlive, Severity::Warning, "SCORPIO-G005",
       "unreachable-alive",
       "alive node cannot reach any registered output",
       "A node no output transitively depends on carries significance "
       "that never influences the result (level -1); it is dead weight "
       "in the graph — usually an unread input or a computed-but-"
       "unused intermediate (cf. SCORPIO-W007 on the tape side)."},
      {RuleKind::OutputSetChanged, Severity::Error, "SCORPIO-G006",
       "output-set-changed",
       "simplify changed the set of alive output nodes",
       "Step S4 only collapses internal aggregation chains; the "
       "registered outputs must survive verbatim.  Losing or gaining "
       "an output means downstream significance reports describe a "
       "different kernel than the one recorded."},
      {RuleKind::InvalidCollapse, Severity::Error, "SCORPIO-G007",
       "invalid-collapse",
       "simplify collapsed a node that was not a res=res+term chain "
       "link",
       "S4's contract (paper Section 2.3) is to collapse only "
       "accumulative operations with exactly one alive consumer of the "
       "same kind, re-attaching their operands to the surviving chain "
       "head.  Collapsing anything else rewires the dataflow and "
       "silently changes what the significance analysis measures."},
      {RuleKind::SignificanceMassLoss, Severity::Error, "SCORPIO-G008",
       "significance-mass-loss",
       "simplify changed the total alive significance mass beyond "
       "tolerance",
       "Collapsing a chain moves labels and edges but must not create "
       "or destroy significance: the sum over alive nodes before and "
       "after S4 has to agree within tolerance, or the normalized "
       "Eq.-11 ranking after simplification is incomparable to the "
       "recorded one."},
      {RuleKind::VarianceLevelMismatch, Severity::Error, "SCORPIO-G009",
       "variance-level-mismatch",
       "reported significance-variance level is not reproducible from "
       "per-level statistics",
       "Step S5 reports the first level whose normalized-significance "
       "variance exceeds Delta; recomputing that scan independently "
       "from the stored per-level significances must give the same "
       "level, or the task-suggestion boundary the runtime trusts is "
       "fabricated."},
      {RuleKind::TruncationNotMonotone, Severity::Error, "SCORPIO-G010",
       "truncation-not-monotone",
       "truncatedAbove result is not the level-prefix of the source "
       "graph",
       "G.removeAbove(L) must keep exactly the alive nodes with level "
       "in [0, L] and preserve their payloads; keeping a deeper node, "
       "dropping a shallower one, or mutating values/significances "
       "breaks the monotone-refinement contract the paper's iterative "
       "deepening relies on."},
      {RuleKind::ValueEscapesEnclosure, Severity::Error, "SCORPIO-A001",
       "value-escapes-enclosure",
       "recorded value enclosure is not contained in the abstract "
       "re-derivation",
       "The abstract interpreter re-derives every node's enclosure from "
       "the recorded inputs alone with inclusion-monotone transfer "
       "functions, so the recorded [u_j] must lie inside the abstract "
       "one (up to the configured ulp slack).  An escape means the "
       "recorded value cannot have been produced by the documented "
       "operation on its operands — a forged, stale or corrupted tape."},
      {RuleKind::PartialEscapesEnclosure, Severity::Error, "SCORPIO-A002",
       "partial-escapes-enclosure",
       "recorded local partial is not contained in the abstract "
       "re-derivation",
       "Local partials are pure functions of the operand enclosures "
       "(Eq. 4-6); re-deriving them from the abstract operand values "
       "must enclose the recorded edge weight.  An escape means the "
       "recorded DynDFG edge weight disagrees with the recorded "
       "dataflow that supposedly produced it."},
      {RuleKind::SignificanceAboveBound, Severity::Error, "SCORPIO-A003",
       "significance-above-bound",
       "dynamic Eq.-11 significance exceeds the static significance "
       "bound",
       "Propagating adjoint magnitude bounds backward through the "
       "abstract graph yields a per-node over-approximation of every "
       "seeding scheme's capped Eq.-11 significance.  A dynamic value "
       "above the bound cannot result from a reverse sweep over this "
       "tape: the sweep result and the tape are out of sync."},
      {RuleKind::StoredReportAboveBound, Severity::Error, "SCORPIO-A004",
       "stored-report-above-bound",
       "stored significance report violates the static bound for the "
       "tape it claims to describe",
       "A persisted report (a .stap significance section or a result-"
       "cache entry) is validated semantically by abstract-interpreting "
       "the node stream it shipped with: any stored per-node "
       "significance above the static bound proves the report was not "
       "computed from this tape — byte-level checksums cannot see "
       "this."},
      {RuleKind::StaticallyDeadEdge, Severity::Warning, "SCORPIO-A005",
       "statically-dead-edge",
       "node is cut off from every output by statically-zero partial "
       "edges",
       "When the abstract transfer functions prove every consuming "
       "edge of a node transmits no adjoint (a certainly-unselected "
       "min/max branch, x^0), the subgraph feeding it is a dead branch "
       "that can never influence any output — invisible to the "
       "syntactic W-rules, because the edges exist and the node is "
       "alive in the graph.  The kernel computes it for nothing."},
      {RuleKind::HiddenZeroDivisor, Severity::Warning, "SCORPIO-A006",
       "hidden-zero-divisor",
       "divisor must contain zero by abstract evaluation but the "
       "recorded enclosure claims otherwise",
       "The abstract re-derivation proves the divisor enclosure "
       "straddles zero, yet the recorded operand hides it — so the "
       "W001 domain-hazard lint stays silent while the true quotient "
       "is unbounded.  The recorded tape understates the hazard."},
      {RuleKind::ConstantFoldable, Severity::Warning, "SCORPIO-A007",
       "constant-foldable",
       "subgraph depends only on point enclosures and folds to a "
       "constant",
       "A node whose transitive inputs are all degenerate (point) "
       "intervals has a point abstract value: the kernel re-computes a "
       "compile-time constant on every evaluation and the analysis "
       "carries zero-width nodes through every sweep.  Fold it into a "
       "constant operand instead."},
      {RuleKind::CommonSubexpression, Severity::Warning, "SCORPIO-A008",
       "common-subexpression",
       "node recomputes an identical earlier operation on the same "
       "operands",
       "Two recorded nodes with the same kind and argument list are "
       "one value computed twice: the kernel pays the operation and "
       "the tape/sweep pay the node twice, and the duplicate halves "
       "the per-node significance attributed to the shared "
       "subexpression.  Reuse the first occurrence."},
      {RuleKind::FpContributionAboveBound, Severity::Error, "SCORPIO-F001",
       "fp-contribution-above-bound",
       "dynamic FP-error contribution exceeds the static rounding-error "
       "bound",
       "The FP-error backend attributes each node half an ulp of its "
       "recorded enclosure midpoint (scaled per OpKind) times its "
       "accumulated adjoint magnitude.  Re-deriving both factors from "
       "the recorded inputs alone — ulp of the abstract enclosure "
       "magnitude times the abstract adjoint magnitude bound — "
       "dominates every honest sweep, so a dynamic contribution above "
       "the bound proves the error numbers and the tape are out of "
       "sync."},
      {RuleKind::StoredFpErrorAboveBound, Severity::Error, "SCORPIO-F002",
       "stored-fperror-above-bound",
       "stored FP-error report violates the static rounding-error bound "
       "for the tape it claims to describe",
       "A persisted FP-error report (a result-cache entry analysed "
       "under the FpError backend) is validated semantically against "
       "the statically re-derived per-node error bounds, exactly like "
       "SCORPIO-A004 validates significance reports: NaN, negative or "
       "above-bound stored contributions prove the report was not "
       "computed from this tape."},
      {RuleKind::DeadNodeNonzeroError, Severity::Error, "SCORPIO-F003",
       "dead-node-nonzero-error",
       "node statically dead for significance carries a nonzero "
       "FP-error contribution",
       "The FP-error and significance analyses share one adjoint "
       "recursion, so a node the abstract interpretation proves "
       "unreachable by any adjoint (AdjointMagBound = 0, hence zero "
       "significance bound) must also contribute exactly zero rounding "
       "error.  A nonzero contribution on such a node means the two "
       "backends disagree about the dataflow — one of them is not "
       "describing this tape."},
      {RuleKind::StoredTotalAboveBound, Severity::Error, "SCORPIO-F004",
       "stored-total-above-bound",
       "stored total FP error exceeds the static total rounding-error "
       "bound",
       "The total FP error at the outputs is the sum of the per-node "
       "contributions, so the upward-rounded sum of the static per-node "
       "bounds dominates it.  A stored total above that bound is "
       "inconsistent with the node stream it shipped with even when "
       "every per-node entry individually passes."},
      {RuleKind::FloatDemotableTask, Severity::Warning, "SCORPIO-F005",
       "float-demotable-task",
       "task level's projected float rounding error is below the "
       "demotion tolerance",
       "Scaling a task level's double-precision error contribution by "
       "2^29 (the ulp ratio between binary32 and binary64 at equal "
       "magnitude) projects what the same code would contribute in "
       "float.  When the projection stays below the demotion tolerance "
       "the whole level is a mixed-precision candidate: demote its "
       "variables to float and keep the rest of the kernel double, the "
       "QDOT-style payoff of significance-driven precision selection."},
      {RuleKind::ErrorDominatingNode, Severity::Warning, "SCORPIO-F006",
       "error-dominating-node",
       "one node contributes the majority of the total FP error bound",
       "A node whose static error contribution exceeds half of the "
       "total bound is where the rounding-error budget is actually "
       "spent: rewriting that operation (higher precision, a fused "
       "form, an algebraic reformulation) moves the total more than "
       "touching everything else combined."},
      {RuleKind::TotalErrorAboveTolerance, Severity::Warning, "SCORPIO-F007",
       "total-error-above-tolerance",
       "total FP rounding-error bound at the outputs exceeds the "
       "configured tolerance",
       "The accumulated half-ulp error bound over every output seed is "
       "the backend's certificate of floating-point accuracy.  A total "
       "above the tolerance — including the unbounded totals that "
       "unbounded enclosures induce — means the kernel's output "
       "precision cannot be certified at this input range and the "
       "mixed-precision lints below it are moot."},
      {RuleKind::DemotionBlockedByDominator, Severity::Warning,
       "SCORPIO-F008", "demotion-blocked-by-dominator",
       "task level misses float demotion only because of its single "
       "largest error contributor",
       "The level's projected float error exceeds the demotion "
       "tolerance, but removing just the largest per-node contribution "
       "brings it back under: one operation blocks the whole level's "
       "demotion.  Keep that node in double (or rewrite it) and demote "
       "the rest of the level."},
  };
  return Catalog;
}

const Rule &verify::ruleInfo(RuleKind K) {
  const std::vector<Rule> &Catalog = ruleCatalog();
  const size_t I = static_cast<size_t>(K);
  assert(I < Catalog.size() && Catalog[I].Kind == K &&
         "rule catalog out of sync with RuleKind");
  return Catalog[I];
}

void VerifyReport::add(Finding F) {
  size_t &N = CountByRule[static_cast<size_t>(F.Kind)];
  ++N;
  if (N <= MaxPerRule)
    Stored.push_back(std::move(F));
}

size_t VerifyReport::errorCount() const {
  size_t N = 0;
  for (size_t I = 0; I != NumRules; ++I)
    if (ruleCatalog()[I].Sev == Severity::Error)
      N += CountByRule[I];
  return N;
}

size_t VerifyReport::warningCount() const {
  size_t N = 0;
  for (size_t I = 0; I != NumRules; ++I)
    if (ruleCatalog()[I].Sev == Severity::Warning)
      N += CountByRule[I];
  return N;
}

void VerifyReport::merge(const VerifyReport &Other,
                         const std::string &MessagePrefix) {
  // Stored findings go through add() (which counts them); the counts of
  // findings Other dropped at its own cap are carried over directly.
  std::vector<size_t> StoredOther(NumRules, 0);
  for (const Finding &F : Other.Stored) {
    ++StoredOther[static_cast<size_t>(F.Kind)];
    Finding Copy = F;
    if (!MessagePrefix.empty())
      Copy.Message = MessagePrefix + Copy.Message;
    add(std::move(Copy));
  }
  for (size_t I = 0; I != NumRules; ++I)
    CountByRule[I] += Other.CountByRule[I] - StoredOther[I];
}

void VerifyReport::writeJson(JsonWriter &J) const {
  J.beginObject();
  J.key("errors").value(errorCount());
  J.key("warnings").value(warningCount());
  J.key("ruleCounts").beginObject();
  for (size_t I = 0; I != NumRules; ++I)
    if (CountByRule[I] != 0)
      J.key(ruleCatalog()[I].Id).value(CountByRule[I]);
  J.endObject();
  J.key("findings").beginArray();
  for (const Finding &F : Stored) {
    const Rule &R = F.rule();
    J.beginObject();
    J.key("ruleId").value(R.Id);
    J.key("severity").value(severityName(R.Sev));
    J.key("node").value(static_cast<long long>(F.Node));
    if (F.ArgIndex >= 0)
      J.key("arg").value(F.ArgIndex);
    J.key("message").value(F.Message);
    if (!F.FixIt.empty())
      J.key("fixIt").value(F.FixIt);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

void VerifyReport::writeJson(std::ostream &OS) const {
  JsonWriter J(OS);
  writeJson(J);
  OS << "\n";
}
