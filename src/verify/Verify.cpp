//===- verify/Verify.cpp - Rule catalog and findings ----------------------===//

#include "verify/Verify.h"

#include "support/Json.h"

#include <cassert>
#include <ostream>

using namespace scorpio;
using namespace scorpio::verify;

const char *verify::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

const std::vector<Rule> &verify::ruleCatalog() {
  static const std::vector<Rule> Catalog = {
      {RuleKind::DanglingArgument, Severity::Error, "SCORPIO-E001",
       "dangling-argument",
       "node argument id does not name a recorded tape node",
       "Every recorded edge must point at an existing node; a dangling "
       "id makes the reverse sweep (Eq. 8) read or scatter out of "
       "bounds."},
      {RuleKind::NonTopologicalArgument, Severity::Error, "SCORPIO-E002",
       "nontopological-argument",
       "node argument id is not strictly smaller than the node id",
       "The tape is an append-only topological order of the DynDFG "
       "(Section 2.3); a forward or self reference breaks the single "
       "backward pass of the adjoint sweep."},
      {RuleKind::ArityMismatch, Severity::Error, "SCORPIO-E003",
       "arity-mismatch",
       "recorded edge count is inconsistent with the operation kind",
       "An Input must have no edges, a unary operation exactly one, a "
       "binary operation one or two (passive constant operands are not "
       "recorded).  Any other shape corrupts partial attribution."},
      {RuleKind::MalformedPartial, Severity::Error, "SCORPIO-E004",
       "malformed-partial",
       "interval local partial has NaN or inverted bounds",
       "Local partials d(phi_j)/d(u_i) are the edge weights of the "
       "DynDFG (Figure 1a); a NaN or inverted enclosure violates the "
       "containment contract (Eq. 4-6) and poisons every adjoint "
       "downstream."},
      {RuleKind::MalformedValue, Severity::Error, "SCORPIO-E005",
       "malformed-value",
       "interval value has NaN or inverted bounds",
       "Node enclosures [u_j] feed the Eq.-11 significance product; a "
       "NaN or inverted enclosure is not a valid interval."},
      {RuleKind::InputKindMismatch, Severity::Error, "SCORPIO-E006",
       "input-kind-mismatch",
       "registered input node is not an Input operation",
       "The tape's input list must reference OpKind::Input nodes "
       "(paper step S2); anything else means the registration "
       "machinery and the tape disagree about what the inputs are."},
      {RuleKind::InvalidOutput, Severity::Error, "SCORPIO-E007",
       "invalid-output",
       "registered output id does not name a recorded tape node",
       "Outputs seed the reverse sweep (step S1/ANALYSE); seeding a "
       "nonexistent node either crashes or silently analyses the wrong "
       "graph."},
      {RuleKind::BatchSweepMismatch, Severity::Error, "SCORPIO-E008",
       "batch-sweep-mismatch",
       "a reverseSweepBatch lane differs from the dedicated sweep",
       "Vector-adjoint lanes are documented to be bit-identical to "
       "per-output scalar sweeps; a mismatch means the batched kernel "
       "and the scalar kernel disagree and PerOutput significances "
       "depend on BatchWidth."},
      {RuleKind::ZeroStraddlingOperand, Severity::Warning, "SCORPIO-W001",
       "zero-straddling-operand",
       "div/log/sqrt operand interval spans a domain boundary",
       "A divisor containing zero (or a log/sqrt operand reaching "
       "non-positive values) forces the interval result to explode to "
       "an unbounded enclosure (Section 2.2); every downstream "
       "significance becomes the worst case.  Narrow the input ranges "
       "or use a dependency-safe primitive (cf. tanOverX)."},
      {RuleKind::UnboundedPartial, Severity::Warning, "SCORPIO-W002",
       "unbounded-partial",
       "interval local partial is unbounded (derivative blow-up)",
       "An infinite local partial (1/x at a zero-straddling x, tan at "
       "a pole) saturates the interval adjoint product of Eq. 8-9 and "
       "masks the relative significance ranking the analysis exists to "
       "produce."},
      {RuleKind::WidthAmplification, Severity::Warning, "SCORPIO-W003",
       "width-amplification",
       "node widens its operand enclosures beyond the threshold",
       "A single operation whose result width exceeds "
       "WidthAmplificationThreshold times its widest operand is where "
       "the interval analysis loses precision (the overestimation the "
       "paper cautions about for Eq. 11); a candidate for range "
       "splitting (SplitAnalysis) or kernel restructuring."},
      {RuleKind::InterleavedAccumulation, Severity::Warning, "SCORPIO-W004",
       "interleaved-accumulation",
       "aggregation chain node has interleaved consumers; S4 cannot "
       "collapse it",
       "Step S4 collapses a self-referential accumulation (res = res + "
       "term) only when each chain node has exactly one consumer of "
       "the same kind.  Reading an intermediate accumulator value "
       "elsewhere keeps the whole chain as graph levels, which skews "
       "the S5 significance-variance level search."},
      {RuleKind::DeadSignificance, Severity::Warning, "SCORPIO-W005",
       "dead-significance",
       "registered input has an identically-zero adjoint",
       "No registered output depends on this input (its adjoint is "
       "exactly [0, 0] for every output seed): its significance is "
       "identically zero.  Either the registration is stale or the "
       "kernel ignores the input — both make the significance report "
       "misleading."},
      {RuleKind::UnregisteredInput, Severity::Warning, "SCORPIO-W006",
       "unregistered-input",
       "tape input node was never registered with the analysis",
       "An input recorded directly (IAValue::input) without "
       "Analysis::registerInput has no name: its significance cannot "
       "be attributed in reports, and the paper's S2 profiling step "
       "never validated its range."},
      {RuleKind::FloatingInput, Severity::Warning, "SCORPIO-W007",
       "floating-input",
       "input node has no consumers",
       "An input no operation ever reads contributes nothing to any "
       "output; it usually indicates a registration typo or dead "
       "kernel code."},
  };
  return Catalog;
}

const Rule &verify::ruleInfo(RuleKind K) {
  const std::vector<Rule> &Catalog = ruleCatalog();
  const size_t I = static_cast<size_t>(K);
  assert(I < Catalog.size() && Catalog[I].Kind == K &&
         "rule catalog out of sync with RuleKind");
  return Catalog[I];
}

void VerifyReport::add(Finding F) {
  size_t &N = CountByRule[static_cast<size_t>(F.Kind)];
  ++N;
  if (N <= MaxPerRule)
    Stored.push_back(std::move(F));
}

size_t VerifyReport::errorCount() const {
  size_t N = 0;
  for (size_t I = 0; I != NumRules; ++I)
    if (ruleCatalog()[I].Sev == Severity::Error)
      N += CountByRule[I];
  return N;
}

size_t VerifyReport::warningCount() const {
  size_t N = 0;
  for (size_t I = 0; I != NumRules; ++I)
    if (ruleCatalog()[I].Sev == Severity::Warning)
      N += CountByRule[I];
  return N;
}

void VerifyReport::merge(const VerifyReport &Other) {
  // Stored findings go through add() (which counts them); the counts of
  // findings Other dropped at its own cap are carried over directly.
  std::vector<size_t> StoredOther(NumRules, 0);
  for (const Finding &F : Other.Stored) {
    ++StoredOther[static_cast<size_t>(F.Kind)];
    add(F);
  }
  for (size_t I = 0; I != NumRules; ++I)
    CountByRule[I] += Other.CountByRule[I] - StoredOther[I];
}

void VerifyReport::writeJson(JsonWriter &J) const {
  J.beginObject();
  J.key("errors").value(errorCount());
  J.key("warnings").value(warningCount());
  J.key("ruleCounts").beginObject();
  for (size_t I = 0; I != NumRules; ++I)
    if (CountByRule[I] != 0)
      J.key(ruleCatalog()[I].Id).value(CountByRule[I]);
  J.endObject();
  J.key("findings").beginArray();
  for (const Finding &F : Stored) {
    const Rule &R = F.rule();
    J.beginObject();
    J.key("ruleId").value(R.Id);
    J.key("severity").value(severityName(R.Sev));
    J.key("node").value(static_cast<long long>(F.Node));
    if (F.ArgIndex >= 0)
      J.key("arg").value(F.ArgIndex);
    J.key("message").value(F.Message);
    J.endObject();
  }
  J.endArray();
  J.endObject();
}

void VerifyReport::writeJson(std::ostream &OS) const {
  JsonWriter J(OS);
  writeJson(J);
  OS << "\n";
}
