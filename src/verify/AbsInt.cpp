//===- verify/AbsInt.cpp - Abstract-interpretation audit pass -------------===//

#include "verify/AbsInt.h"

#include "interval/IntervalCompare.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

using namespace scorpio;
using namespace scorpio::verify;

namespace {

std::string nodeRef(const Tape &T, NodeId Id) {
  std::ostringstream OS;
  OS << "u" << Id << " (" << opKindName(T.kind(Id)) << ")";
  return OS.str();
}

void flag(VerifyReport &Report, RuleKind K, NodeId Node, int Arg,
          std::string Msg, std::string FixIt = "") {
  Finding F;
  F.Kind = K;
  F.Node = Node;
  F.ArgIndex = Arg;
  F.Message = std::move(Msg);
  F.FixIt = std::move(FixIt);
  Report.add(std::move(F));
}

bool isExactZero(const Interval &X) {
  return X.lower() == 0.0 && X.upper() == 0.0;
}

/// W001's hazard predicate: a non-degenerate enclosure spanning zero.
bool straddleHazard(const Interval &X) {
  return X.contains(0.0) && !X.isPoint();
}

/// The next double above \p X — a one-ulp upward rounding so the scalar
/// magnitude propagation stays an upper bound under round-to-nearest.
double up(double X) { return detail::stepUp(X); }

/// The trust frontier: nodes whose abstract value cannot be re-derived
/// from recorded information alone.  Inputs are the givens; TanOverX
/// depends on the unrecorded phase constant Phi; a node with fewer
/// recorded edges than its OpKind arity had a passive (unrecorded)
/// constant operand.
bool isAnchored(OpKind K, unsigned NumArgs) {
  return K == OpKind::Input || K == OpKind::TanOverX ||
         NumArgs < opArity(K);
}

/// The recorder's own transfer function for one non-anchored node:
/// value and local partials from the abstract operand enclosures.
/// Mirrors core/IAValue.cpp formula for formula so that on an honest
/// same-build tape abstract and recorded numbers are bitwise equal.
void transfer(OpKind K, int32_t AuxInt, const Interval &X, const Interval &Y,
              Interval &V, Interval &P0, Interval &P1) {
  P0 = Interval(0.0);
  P1 = Interval(0.0);
  switch (K) {
  case OpKind::Add:
    V = X + Y;
    P0 = Interval(1.0);
    P1 = Interval(1.0);
    return;
  case OpKind::Sub:
    V = X - Y;
    P0 = Interval(1.0);
    P1 = Interval(-1.0);
    return;
  case OpKind::Mul:
    V = X * Y;
    P0 = Y;
    P1 = X;
    return;
  case OpKind::Div: {
    const Interval InvB = recip(Y);
    V = X / Y;
    P0 = InvB;
    P1 = -X * sqr(InvB);
    return;
  }
  case OpKind::Neg:
    V = -X;
    P0 = Interval(-1.0);
    return;
  case OpKind::Sin:
    V = sin(X);
    P0 = cos(X);
    return;
  case OpKind::Cos:
    V = cos(X);
    P0 = -sin(X);
    return;
  case OpKind::Tan:
    V = tan(X);
    P0 = Interval(1.0) + sqr(V);
    return;
  case OpKind::Exp:
    V = exp(X);
    P0 = V;
    return;
  case OpKind::Log:
    V = log(X);
    P0 = recip(X);
    return;
  case OpKind::Sqrt:
    V = sqrt(X);
    P0 = recip(Interval(2.0) * V);
    return;
  case OpKind::Sqr:
    V = sqr(X);
    P0 = Interval(2.0) * X;
    return;
  case OpKind::PowInt:
    V = pow(X, AuxInt);
    P0 = AuxInt == 0
             ? Interval(0.0)
             : Interval(static_cast<double>(AuxInt)) * pow(X, AuxInt - 1);
    return;
  case OpKind::Pow:
    V = pow(X, Y);
    P0 = Y * pow(X, Y - Interval(1.0));
    P1 = V * log(X);
    return;
  case OpKind::Fabs:
    V = fabs(X);
    if (X.lower() >= 0.0)
      P0 = Interval(1.0);
    else if (X.upper() <= 0.0)
      P0 = Interval(-1.0);
    else
      P0 = Interval(-1.0, 1.0);
    return;
  case OpKind::Erf: {
    static const double TwoOverSqrtPi = 1.12837916709551257390;
    V = erf(X);
    P0 = Interval(TwoOverSqrtPi) * exp(-sqr(X));
    return;
  }
  case OpKind::Atan:
    V = atan(X);
    P0 = recip(Interval(1.0) + sqr(X));
    return;
  case OpKind::Min:
    switch (certainlyLessEqual(X, Y)) {
    case Tribool::True:
      P0 = Interval(1.0);
      break;
    case Tribool::False:
      P1 = Interval(1.0);
      break;
    case Tribool::Ambiguous:
      P0 = Interval(0.0, 1.0);
      P1 = Interval(0.0, 1.0);
      break;
    }
    V = min(X, Y);
    return;
  case OpKind::Max:
    switch (certainlyGreaterEqual(X, Y)) {
    case Tribool::True:
      P0 = Interval(1.0);
      break;
    case Tribool::False:
      P1 = Interval(1.0);
      break;
    case Tribool::Ambiguous:
      P0 = Interval(0.0, 1.0);
      P1 = Interval(0.0, 1.0);
      break;
    }
    V = max(X, Y);
    return;
  case OpKind::Round: {
    V = round(X);
    const double WIn = X.width();
    const double Slope =
        WIn > 0.0 ? std::min(1.0, V.width() / WIn) : 1.0;
    P0 = Interval(0.0, Slope);
    return;
  }
  case OpKind::Input:
  case OpKind::TanOverX:
    // Anchored kinds never reach the transfer function.
    V = X;
    return;
  }
}

/// Packs a node's operation identity for the A008 duplicate scan; two
/// nodes with equal keys (confirmed field by field against the bucket)
/// compute the same value.
uint64_t cseHash(OpKind K, int32_t AuxInt, unsigned NumArgs, NodeId A0,
                 NodeId A1) {
  uint64_t H = 1469598103934665603ull;
  const auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  Mix(static_cast<uint64_t>(K));
  Mix(static_cast<uint64_t>(static_cast<uint32_t>(AuxInt)));
  Mix(NumArgs);
  Mix(static_cast<uint64_t>(static_cast<int64_t>(A0)));
  Mix(static_cast<uint64_t>(static_cast<int64_t>(A1)));
  return H;
}

bool sameOperation(const Tape &T, NodeId A, NodeId B) {
  if (T.kind(A) != T.kind(B) || T.auxInt(A) != T.auxInt(B) ||
      T.numArgs(A) != T.numArgs(B))
    return false;
  for (unsigned K = 0, E = T.numArgs(A); K != E; ++K)
    if (T.arg(A, K) != T.arg(B, K))
      return false;
  return true;
}

} // namespace

AbsIntResult verify::absInterpret(const Tape &T,
                                  std::span<const NodeId> Outputs,
                                  const AbsIntOptions &Options) {
  const size_t N = T.size();
  AbsIntResult R;
  R.Report = VerifyReport(Options.MaxFindingsPerRule);
  R.Values.resize(N);
  R.Partials.assign(2 * N, Interval(0.0));
  R.Anchored.assign(N, 0);
  R.AdjointMagBound.assign(N, 0.0);
  R.SignificanceBound.assign(N, 0.0);

  std::vector<uint32_t> Consumers(N, 0);
  std::vector<uint8_t> IsOutput(N, 0);
  for (NodeId O : Outputs)
    if (O != InvalidNodeId && static_cast<size_t>(O) < N)
      IsOutput[static_cast<size_t>(O)] = 1;

  // Foldable[i]: the node's transitive dependencies are all point
  // (degenerate) input enclosures, so its value is a compile-time
  // constant.  Anchored non-input nodes depend on unrecorded state and
  // are never foldable.
  std::vector<uint8_t> Foldable(N, 0);

  // Open-addressed CSE table, one allocation for the whole scan: a
  // slot holds the first node recorded with its operation signature.
  // Capacity >= 2N keeps the load factor at 1/2, so probe chains stay
  // short; linear probing with the sameOperation compare handles hash
  // collisions exactly like the per-hash buckets a map would keep.
  std::vector<NodeId> CseTable;
  size_t CseMask = 0;
  if (Options.CheckCommonSubexpressions) {
    size_t Capacity = 16;
    while (Capacity < 2 * N)
      Capacity <<= 1;
    CseTable.assign(Capacity, InvalidNodeId);
    CseMask = Capacity - 1;
  }

  // ---- Forward pass: re-derive enclosures and partials ----
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    const OpKind Kind = T.kind(Id);
    const unsigned NumArgs = T.numArgs(Id);
    for (unsigned K = 0; K != NumArgs; ++K)
      ++Consumers[static_cast<size_t>(T.arg(Id, K))];

    if (isAnchored(Kind, NumArgs)) {
      R.Anchored[I] = 1;
      R.Values[I] = T.value(Id);
      for (unsigned K = 0; K != NumArgs; ++K)
        R.Partials[2 * I + K] = T.partial(Id, K);
      Foldable[I] = Kind == OpKind::Input && R.Values[I].isPoint();
      continue;
    }

    const Interval &X = R.Values[static_cast<size_t>(T.arg(Id, 0))];
    const Interval &Y = NumArgs > 1
                            ? R.Values[static_cast<size_t>(T.arg(Id, 1))]
                            : X;
    Interval V(0.0), P0(0.0), P1(0.0);
    transfer(Kind, T.auxInt(Id), X, Y, V, P0, P1);
    R.Values[I] = V;
    R.Partials[2 * I + 0] = P0;
    if (NumArgs > 1)
      R.Partials[2 * I + 1] = P1;

    Foldable[I] = 1;
    for (unsigned K = 0; K != NumArgs; ++K)
      if (!Foldable[static_cast<size_t>(T.arg(Id, K))])
        Foldable[I] = 0;

    // A001: the recorded enclosure must lie inside the abstract one.
    // Raw containment first — on an honest same-build tape the two are
    // bitwise equal, so the slack widening (a handful of nextafter
    // steps per bound) only ever runs on the failure path.
    if (!V.contains(T.value(Id)) &&
        !detail::outward(V.lower(), V.upper(), Options.SlackUlps)
             .contains(T.value(Id))) {
      std::ostringstream OS;
      OS << nodeRef(T, Id) << " recorded enclosure " << T.value(Id)
         << " escapes the abstract enclosure " << V;
      flag(R.Report, RuleKind::ValueEscapesEnclosure, Id, -1, OS.str());
    }

    // A002: recorded partials must lie inside the abstract partials.
    // Round is exempt: its slope formula is a width ratio, which is not
    // inclusion-monotone (see DESIGN.md on the containment argument).
    if (Kind != OpKind::Round) {
      for (unsigned K = 0; K != NumArgs; ++K) {
        const Interval &P = R.Partials[2 * I + K];
        if (P.contains(T.partial(Id, K)) ||
            detail::outward(P.lower(), P.upper(), Options.SlackUlps)
                .contains(T.partial(Id, K)))
          continue;
        std::ostringstream OS;
        OS << nodeRef(T, Id) << " recorded partial " << K << " w.r.t. u"
           << T.arg(Id, K) << " = " << T.partial(Id, K)
           << " escapes the abstract partial " << P;
        flag(R.Report, RuleKind::PartialEscapesEnclosure, Id,
             static_cast<int>(K), OS.str());
      }
    }

    // A006: the abstract divisor provably straddles zero, but the
    // recorded operand enclosure claims otherwise — the W001 domain
    // lint (which only sees recorded values) stays silent on a real
    // hazard.
    if (Kind == OpKind::Div && NumArgs == 2) {
      const NodeId Divisor = T.arg(Id, 1);
      const Interval &AbsB = R.Values[static_cast<size_t>(Divisor)];
      if (straddleHazard(AbsB) && !straddleHazard(T.value(Divisor))) {
        std::ostringstream OS;
        OS << nodeRef(T, Id) << " divisor u" << Divisor << " = "
           << T.value(Divisor) << " must contain zero (abstract " << AbsB
           << "); the recorded enclosure hides the hazard";
        flag(R.Report, RuleKind::HiddenZeroDivisor, Id, 1, OS.str());
      }
    }

    // A008: an identical operation on identical operands was already
    // recorded.  Anchored nodes are excluded above: their unrecorded
    // passive operand could differ between the two occurrences.
    if (Options.CheckCommonSubexpressions) {
      const NodeId A0 = T.arg(Id, 0);
      const NodeId A1 = NumArgs > 1 ? T.arg(Id, 1) : InvalidNodeId;
      size_t Slot = static_cast<size_t>(
                        cseHash(Kind, T.auxInt(Id), NumArgs, A0, A1)) &
                    CseMask;
      NodeId First = InvalidNodeId;
      while (CseTable[Slot] != InvalidNodeId) {
        if (sameOperation(T, CseTable[Slot], Id)) {
          First = CseTable[Slot];
          break;
        }
        Slot = (Slot + 1) & CseMask;
      }
      if (First != InvalidNodeId) {
        std::ostringstream OS;
        OS << nodeRef(T, Id) << " duplicates u" << First
           << ": same operation on identical operands";
        std::ostringstream Fix;
        Fix << "reuse u" << First << " instead of recomputing";
        flag(R.Report, RuleKind::CommonSubexpression, Id, -1, OS.str(),
             Fix.str());
      } else {
        CseTable[Slot] = Id;
      }
    }
  }

  // A007: flag the frontier of each constant-foldable subgraph — a
  // foldable operation node that is an output, feeds a non-foldable
  // consumer, or feeds nothing.  (Interior nodes fold away with it.)
  if (Options.CheckFoldable) {
    std::vector<uint8_t> Frontier(N, 0);
    for (size_t I = 0; I != N; ++I) {
      const NodeId Id = static_cast<NodeId>(I);
      if (!Foldable[I] || T.kind(Id) == OpKind::Input)
        continue;
      Frontier[I] = IsOutput[I] || Consumers[I] == 0;
    }
    for (size_t I = 0; I != N; ++I) {
      const NodeId Id = static_cast<NodeId>(I);
      if (Foldable[I])
        continue;
      for (unsigned K = 0, E = T.numArgs(Id); K != E; ++K) {
        const size_t Arg = static_cast<size_t>(T.arg(Id, K));
        if (Foldable[Arg] && T.kind(T.arg(Id, K)) != OpKind::Input)
          Frontier[Arg] = 1;
      }
    }
    for (size_t I = 0; I != N; ++I) {
      if (!Frontier[I])
        continue;
      const NodeId Id = static_cast<NodeId>(I);
      std::ostringstream OS;
      OS << nodeRef(T, Id) << " computes to the constant " << R.Values[I]
         << " from point inputs";
      std::ostringstream Fix;
      Fix << "fold u" << Id << " and its point-input subgraph into a "
          << "constant operand";
      flag(R.Report, RuleKind::ConstantFoldable, Id, -1, OS.str(),
           Fix.str());
    }
  }

  // ---- Backward pass: adjoint magnitude bounds ----
  // M[i] bounds the summed adjoint magnitudes over every output seed:
  // seeding each output with magnitude 1 and propagating
  // M[arg] += |partial| * M[node] upward (with one-ulp upward rounding
  // per operation) dominates both the combined-seed sweep and the sum
  // of per-output sweeps, because interval |.| is sub-multiplicative
  // and sub-additive over the same recursion.
  std::vector<double> &M = R.AdjointMagBound;
  for (NodeId O : Outputs)
    if (O != InvalidNodeId && static_cast<size_t>(O) < N)
      M[static_cast<size_t>(O)] += 1.0;
  for (size_t I = N; I-- > 0;) {
    const double MI = M[I];
    if (MI == 0.0)
      continue;
    const NodeId Id = static_cast<NodeId>(I);
    for (unsigned K = 0, E = T.numArgs(Id); K != E; ++K) {
      const double PM = R.Partials[2 * I + K].mag();
      if (PM == 0.0)
        continue;
      double &Slot = M[static_cast<size_t>(T.arg(Id, K))];
      Slot = up(Slot + up(PM * MI));
    }
  }

  // Per-node significance bound.  Both metrics are dominated by
  // (w([u]) + 2 |[u]|) * M: Eq.-11 uses w([u] * a) <= w([u])|a| +
  // |[u]| w(a) <= (w + 2|.|)|a|, WidthTimesDerivative uses
  // w([u]) * |a| directly, and summing over per-output seeds is
  // covered because M bounds the summed magnitudes.
  const double Cap = Options.SignificanceCap;
  for (size_t I = 0; I != N; ++I) {
    const double MI = M[I];
    if (MI == 0.0)
      continue; // exact-zero adjoints give exactly zero significance
    const double W = R.Values[I].width();
    const double Mg = R.Values[I].mag();
    const double Raw = up(up(W + up(2.0 * Mg)) * MI);
    // NaN (inf - inf widths) and overflow both saturate at the cap,
    // exactly like cappedSignificance.
    R.SignificanceBound[I] = Raw <= Cap ? Raw : Cap;
  }

  // A005: a consumed non-input node every consuming edge of which has
  // abstract partial exactly [0, 0] — the branch is unreachable by
  // abstract adjoint (a certainly-unselected min/max arm, x^0), so the
  // work feeding it can never influence any output.  The syntactic
  // W-rules cannot see this: the edges exist, the node is alive.
  // Only report nodes that a *live* consumer cuts off through a hard
  // zero partial; a node dead merely because its consumers are dead
  // reports at the consumer closest to the live graph.
  std::vector<uint8_t> DeadEdgeFromLive(N, 0);
  for (size_t J = 0; J != N; ++J) {
    if (M[J] == 0.0 && !IsOutput[J])
      continue;
    const NodeId Cons = static_cast<NodeId>(J);
    for (unsigned K = 0, E = T.numArgs(Cons); K != E; ++K)
      if (isExactZero(R.Partials[2 * J + K]))
        DeadEdgeFromLive[static_cast<size_t>(T.arg(Cons, K))] = 1;
  }
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    if (T.kind(Id) == OpKind::Input || IsOutput[I] || Consumers[I] == 0 ||
        M[I] != 0.0 || !DeadEdgeFromLive[I])
      continue;
    std::ostringstream OS;
    OS << nodeRef(T, Id) << " = " << R.Values[I]
       << " is unreachable by abstract adjoint: every consuming edge "
       << "has partial [0, 0]";
    flag(R.Report, RuleKind::StaticallyDeadEdge, Id, -1, OS.str());
  }

  return R;
}

void verify::checkDynamicSignificance(AbsIntResult &R,
                                      std::span<const double> NodeSignificance,
                                      const AbsIntOptions &Options) {
  const size_t N = std::min(R.SignificanceBound.size(),
                            NodeSignificance.size());
  const double Slack = 1.0 + Options.SignificanceSlack;
  for (size_t I = 0; I != N; ++I) {
    const double D = NodeSignificance[I];
    const double B = R.SignificanceBound[I];
    if (D <= B * Slack)
      continue;
    std::ostringstream OS;
    OS << "u" << I << " dynamic significance " << D
       << " exceeds the static bound " << B;
    flag(R.Report, RuleKind::SignificanceAboveBound,
         static_cast<NodeId>(I), -1, OS.str());
  }
}

VerifyReport verify::auditStoredSignificance(const AbsIntResult &R,
                                             std::span<const double> Stored,
                                             const AbsIntOptions &Options) {
  VerifyReport Report(Options.MaxFindingsPerRule);
  if (Stored.size() != R.SignificanceBound.size()) {
    std::ostringstream OS;
    OS << "stored report has " << Stored.size()
       << " per-node significances but the tape has "
       << R.SignificanceBound.size() << " nodes";
    flag(Report, RuleKind::StoredReportAboveBound, InvalidNodeId, -1,
         OS.str());
    return Report;
  }
  const double Slack = 1.0 + Options.SignificanceSlack;
  for (size_t I = 0; I != Stored.size(); ++I) {
    const double D = Stored[I];
    const double B = R.SignificanceBound[I];
    // A reverse sweep over this tape can only produce values in
    // [0, bound]; NaN, negatives and escapes all prove the report was
    // not computed from this tape.
    if (D >= 0.0 && D <= B * Slack)
      continue;
    std::ostringstream OS;
    OS << "u" << I << " stored significance " << D
       << " violates the static bound " << B;
    flag(Report, RuleKind::StoredReportAboveBound, static_cast<NodeId>(I),
         -1, OS.str());
  }
  return Report;
}
