//===- verify/FpError.cpp - Rounding-error audit and mixed-precision lints ===//

#include "verify/FpError.h"

#include "graph/DynDFG.h"
#include "verify/AbsInt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

using namespace scorpio;
using namespace scorpio::verify;

double verify::fpOpErrorScale(OpKind K) {
  switch (K) {
  case OpKind::Input:
  case OpKind::Neg:
  case OpKind::Fabs:
  case OpKind::Min:
  case OpKind::Max:
  case OpKind::Round:
    return 0.0;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Sqrt:
  case OpKind::Sqr:
    return 1.0;
  case OpKind::Sin:
  case OpKind::Cos:
  case OpKind::Tan:
  case OpKind::Exp:
  case OpKind::Log:
  case OpKind::PowInt:
  case OpKind::Pow:
  case OpKind::Erf:
  case OpKind::Atan:
  case OpKind::TanOverX:
    return 2.0;
  }
  return 2.0; // unreachable; conservative for out-of-range bytes
}

double verify::fpHalfUlp(double X) {
  if (std::isnan(X) || std::isinf(X))
    return std::numeric_limits<double>::infinity();
  const double AbsX = std::fabs(X);
  return 0.5 * (detail::stepUp(AbsX) - AbsX);
}

double verify::fpLocalError(OpKind K, double Magnitude) {
  const double Scale = fpOpErrorScale(K);
  if (Scale == 0.0)
    return 0.0; // exact ops contribute nothing, even at inf magnitude
  return Scale * fpHalfUlp(Magnitude);
}

namespace {

std::string nodeRef(const Tape &T, NodeId Id) {
  std::ostringstream OS;
  OS << "u" << Id << " (" << opKindName(T.kind(Id)) << ")";
  return OS.str();
}

void flag(VerifyReport &Report, RuleKind K, NodeId Node, int Arg,
          std::string Msg, std::string FixIt = "") {
  Finding F;
  F.Kind = K;
  F.Node = Node;
  F.ArgIndex = Arg;
  F.Message = std::move(Msg);
  F.FixIt = std::move(FixIt);
  Report.add(std::move(F));
}

/// One-ulp upward rounding, as in the AbsInt magnitude propagation:
/// keeps the scalar bound recursion an upper bound under
/// round-to-nearest.
double up(double X) { return detail::stepUp(X); }

} // namespace

FpErrorResult verify::fpErrorInterpret(const Tape &T,
                                       std::span<const NodeId> Outputs,
                                       const FpErrorOptions &Options) {
  const size_t N = T.size();
  FpErrorResult R;
  R.Report = VerifyReport(Options.MaxFindingsPerRule);
  R.LocalErrorBound.assign(N, 0.0);
  R.ContributionBound.assign(N, 0.0);

  // The numeric skeleton comes from the abstract interpreter: abstract
  // enclosures for the local-error magnitudes and the backward adjoint
  // magnitude bounds.  Its honesty checks (A001/A002/...) are the
  // --absint pass's duty, not this one's — run them disabled where
  // optional and discard its report.
  AbsIntOptions AbsOpts;
  AbsOpts.SignificanceCap = Options.ErrorCap;
  AbsOpts.MaxFindingsPerRule = 1;
  AbsOpts.CheckFoldable = false;
  AbsOpts.CheckCommonSubexpressions = false;
  AbsIntResult Abs = absInterpret(T, Outputs, AbsOpts);
  R.AdjointMagBound = std::move(Abs.AdjointMagBound);

  const double Cap = Options.ErrorCap;
  double Total = 0.0;
  for (size_t I = 0; I != N; ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    // Static local error at the *abstract* enclosure magnitude: the
    // recorded enclosure is contained in the abstract one, |mid| <= mag
    // on any interval, and the step-based ulp is non-decreasing in
    // magnitude, so this dominates the dynamic backend's
    // half-ulp-at-|mid| local error.
    const double Eps = fpLocalError(T.kind(Id), Abs.Values[I].mag());
    R.LocalErrorBound[I] = Eps <= Cap ? Eps : Cap;
    const double M = R.AdjointMagBound[I];
    if (M == 0.0 || Eps == 0.0)
      continue; // exact-zero factors give exactly zero contribution
    const double Raw = up(Eps * M);
    // NaN (0 * inf never reaches here; inf * inf can) and overflow both
    // saturate at the cap, exactly like the dynamic backend.
    const double B = Raw <= Cap ? Raw : Cap;
    R.ContributionBound[I] = B;
    Total = up(Total + B);
  }
  R.TotalErrorBound = Total <= Cap ? Total : Cap;
  return R;
}

void verify::checkDynamicFpError(FpErrorResult &R,
                                 std::span<const double> Contributions,
                                 const FpErrorOptions &Options) {
  const size_t N =
      std::min(R.ContributionBound.size(), Contributions.size());
  const double Slack = 1.0 + Options.ErrorSlack;
  for (size_t I = 0; I != N; ++I) {
    const double D = Contributions[I];
    // The cross-validation against interval significance and AbsInt: a
    // node unreachable by any abstract adjoint has zero significance
    // bound, so the shared adjoint recursion must also assign it
    // exactly zero rounding-error contribution.
    if (R.AdjointMagBound[I] == 0.0) {
      if (D != 0.0) {
        std::ostringstream OS;
        OS << "u" << I << " is statically dead for significance "
           << "(adjoint magnitude bound 0) but carries FP-error "
           << "contribution " << D;
        flag(R.Report, RuleKind::DeadNodeNonzeroError,
             static_cast<NodeId>(I), -1, OS.str());
      }
      continue;
    }
    const double B = R.ContributionBound[I];
    if (D <= B * Slack)
      continue;
    std::ostringstream OS;
    OS << "u" << I << " dynamic FP-error contribution " << D
       << " exceeds the static bound " << B;
    flag(R.Report, RuleKind::FpContributionAboveBound,
         static_cast<NodeId>(I), -1, OS.str());
  }
}

VerifyReport verify::auditStoredFpError(const FpErrorResult &R,
                                        std::span<const double> Stored,
                                        double StoredTotal,
                                        const FpErrorOptions &Options) {
  VerifyReport Report(Options.MaxFindingsPerRule);
  if (Stored.size() != R.ContributionBound.size()) {
    std::ostringstream OS;
    OS << "stored report has " << Stored.size()
       << " per-node FP-error contributions but the tape has "
       << R.ContributionBound.size() << " nodes";
    flag(Report, RuleKind::StoredFpErrorAboveBound, InvalidNodeId, -1,
         OS.str());
    return Report;
  }
  const double Slack = 1.0 + Options.ErrorSlack;
  for (size_t I = 0; I != Stored.size(); ++I) {
    const double D = Stored[I];
    const double B = R.ContributionBound[I];
    // An FpError sweep over this tape can only produce values in
    // [0, bound]; NaN, negatives and escapes all prove the report was
    // not computed from this tape.
    if (D >= 0.0 && D <= B * Slack)
      continue;
    std::ostringstream OS;
    OS << "u" << I << " stored FP-error contribution " << D
       << " violates the static bound " << B;
    flag(Report, RuleKind::StoredFpErrorAboveBound,
         static_cast<NodeId>(I), -1, OS.str());
  }
  // The total must be consistent with the node stream even when every
  // per-node entry passes individually.
  if (!(StoredTotal >= 0.0 && StoredTotal <= R.TotalErrorBound * Slack)) {
    std::ostringstream OS;
    OS << "stored total FP error " << StoredTotal
       << " violates the static total bound " << R.TotalErrorBound;
    flag(Report, RuleKind::StoredTotalAboveBound, InvalidNodeId, -1,
         OS.str());
  }
  return Report;
}

VerifyReport verify::lintFpError(const Tape &T, const FpErrorResult &R,
                                 const std::vector<NodeId> &Outputs,
                                 const std::map<NodeId, std::string> &Labels,
                                 const FpErrorOptions &Options) {
  VerifyReport Report(Options.MaxFindingsPerRule);
  const double Total = R.TotalErrorBound;

  // F007: the accuracy certificate itself.
  if (!(Total <= Options.OutputErrorTolerance)) {
    std::ostringstream OS;
    OS << "total FP error bound " << Total
       << " exceeds the output error tolerance "
       << Options.OutputErrorTolerance;
    flag(Report, RuleKind::TotalErrorAboveTolerance, InvalidNodeId, -1,
         OS.str());
  }

  // F006: where the error budget is actually spent.
  if (Total > 0.0 && std::isfinite(Total)) {
    const double Threshold = Options.DominanceFraction * Total;
    for (size_t I = 0; I != R.ContributionBound.size(); ++I) {
      const double B = R.ContributionBound[I];
      if (B <= Threshold)
        continue;
      std::ostringstream OS;
      OS << nodeRef(T, static_cast<NodeId>(I))
         << " contributes " << B << " of the total FP error bound "
         << Total << " (> " << Options.DominanceFraction
         << " of the budget)";
      flag(Report, RuleKind::ErrorDominatingNode, static_cast<NodeId>(I),
           -1, OS.str());
    }
  }

  // F005/F008 over the paper's task groups: the DynDFG levels.  The
  // *raw* (unsimplified) graph keeps tape ids and graph ids aligned,
  // so each level's error accounting is exact.
  DynDFG G = DynDFG::fromTape(T, R.ContributionBound, Labels, Outputs);
  G.computeLevels();
  const int Height = G.height();
  for (int L = 0; L != Height; ++L) {
    const std::vector<NodeId> Level = G.nodesAtLevel(L);
    if (Level.empty())
      continue;
    bool AllInputs = true;
    double GroupErr = 0.0;
    double MaxErr = 0.0;
    NodeId MaxNode = InvalidNodeId;
    for (NodeId Id : Level) {
      const size_t I = static_cast<size_t>(Id);
      AllInputs = AllInputs && T.kind(Id) == OpKind::Input;
      const double B =
          I < R.ContributionBound.size() ? R.ContributionBound[I] : 0.0;
      GroupErr += B;
      if (B > MaxErr || MaxNode == InvalidNodeId) {
        MaxErr = B;
        MaxNode = Id;
      }
    }
    // A level of bare inputs performs no arithmetic — "demote it" is
    // not actionable advice.
    if (AllInputs || !std::isfinite(GroupErr))
      continue;
    const double Projected = GroupErr * FloatDemotionScale;
    if (Projected <= Options.DemotionTolerance) {
      std::ostringstream OS;
      OS << "task level " << L << " (" << Level.size()
         << " nodes) has projected float error " << Projected
         << " <= demotion tolerance " << Options.DemotionTolerance;
      std::ostringstream Fix;
      Fix << "demote the " << Level.size() << " nodes of task level "
          << L << " to float; projected float error " << Projected
          << " stays within tolerance";
      flag(Report, RuleKind::FloatDemotableTask, Level.front(), -1,
           OS.str(), Fix.str());
    } else if (MaxErr > 0.0 &&
               (GroupErr - MaxErr) * FloatDemotionScale <=
                   Options.DemotionTolerance) {
      std::ostringstream OS;
      OS << "task level " << L << " misses float demotion only because "
         << "of " << nodeRef(T, MaxNode) << ": without its contribution "
         << MaxErr << " the projected float error "
         << (GroupErr - MaxErr) * FloatDemotionScale
         << " is within tolerance " << Options.DemotionTolerance;
      std::ostringstream Fix;
      Fix << "keep u" << MaxNode << " in double and demote the "
          << "remaining " << Level.size() - 1 << " nodes of task level "
          << L << " to float";
      flag(Report, RuleKind::DemotionBlockedByDominator, MaxNode, -1,
           OS.str(), Fix.str());
    }
  }
  return Report;
}
