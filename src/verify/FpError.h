//===- verify/FpError.h - Rounding-error audit and mixed-precision lints --===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static side of the CHEF-FP-style FP-error backend
/// (core/SweepBackends.h): a re-derivation of per-node rounding-error
/// bounds from the tape IR alone, the cross-checks that hold the
/// dynamic backend to them, and the mixed-precision lints built on top.
///
/// The error model, shared verbatim with the dynamic backend so the two
/// sides cannot drift apart:
///
///   eps_i = fpLocalError(K_i, m_i)
///         = fpOpErrorScale(K_i) * (ulp(m_i) / 2)
///
/// where m_i is a magnitude of node i's enclosure.  The *dynamic*
/// backend evaluates the model at |mid| of the recorded enclosure (the
/// representative point CHEF-FP would differentiate at); the *static*
/// bound here evaluates it at mag() of the abstract enclosure from
/// verify/AbsInt.h.  Containment follows from two monotonicities:
/// |mid| <= mag of the same interval, the recorded enclosure is
/// contained in the abstract one so its mag is no larger, and the
/// step-based ulp is non-decreasing in magnitude.  Multiplying by the
/// abstract adjoint magnitude bound (which dominates every seeding
/// scheme's summed adjoint magnitudes, see AbsInt.cpp) with one-ulp
/// upward rounding then dominates every honest dynamic contribution —
/// the same trust model as the SCORPIO-A family, applied to rounding
/// error.
///
/// Rules emitted here:
///
///   SCORPIO-F001..F004 (errors): dynamic / stored FP-error numbers
///   that the static bounds prove were not computed from this tape,
///   including the cross-validation against interval significance
///   (F003: a node statically dead for significance must have exactly
///   zero error contribution).
///
///   SCORPIO-F005..F008 (warnings): mixed-precision lints over the
///   DynDFG task levels — float-demotable levels (with SARIF fix-its),
///   error-dominating nodes, out-of-tolerance totals, and levels one
///   dominator short of demotion.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_VERIFY_FPERROR_H
#define SCORPIO_VERIFY_FPERROR_H

#include "interval/Interval.h"
#include "tape/Tape.h"
#include "verify/Verify.h"

#include <map>
#include <span>
#include <string>
#include <vector>

namespace scorpio::verify {

/// Per-OpKind scale on the half-ulp local rounding error:
///   0 — exact in IEEE-754 binary arithmetic (Input just stores,
///       Neg/Fabs flip the sign bit, Min/Max select, Round is exact by
///       definition of the result);
///   1 — correctly rounded primitives (+, -, *, /, sqrt and the x*x
///       square), at most half an ulp of error each;
///   2 — libm transcendentals, conservatively allowed a full ulp.
double fpOpErrorScale(OpKind K);

/// Half an ulp at magnitude \p X (X >= 0): (stepUp(X) - X) / 2.
/// Infinite or NaN magnitudes yield +inf — an unbounded enclosure
/// cannot certify any rounding error.
double fpHalfUlp(double X);

/// The shared local-error model: eps = scale(K) * halfUlp(Magnitude).
/// Exact kinds return exactly 0.0 for every magnitude (including inf).
double fpLocalError(OpKind K, double Magnitude);

/// Ratio of binary32 to binary64 ulp at equal magnitude (2^29): scaling
/// a double-precision error contribution by this projects the same
/// dataflow evaluated in float, the basis of the F005/F008 demotion
/// lints.
inline constexpr double FloatDemotionScale = 536870912.0;

/// Knobs for the FP-error audit.  Mirrors AbsIntOptions deliberately:
/// the pass is the A-family trust model instantiated for rounding
/// error.
struct FpErrorOptions {
  /// Mirror of AnalysisOptions::SignificanceCap — contributions and
  /// bounds saturate here so downstream statistics stay finite.
  double ErrorCap = 1e300;
  /// Relative headroom for the F001/F002/F004 comparisons: a dynamic
  /// or stored value D only fires against bound B when
  /// D > B * (1 + ErrorSlack), absorbing the round-to-nearest
  /// accumulation the upward-rounded static recursion does not model.
  double ErrorSlack = 0.5;
  /// F005/F008: a task level whose projected *float* error
  /// contribution is at most this is safe to demote to float.
  double DemotionTolerance = 1e-6;
  /// F006: a node contributing more than this fraction of the total
  /// error bound dominates the budget.
  double DominanceFraction = 0.5;
  /// F007: total FP error bound above this cannot be certified.
  double OutputErrorTolerance = 1e-3;
  /// Storage cap per rule, as in AbsIntOptions.
  unsigned MaxFindingsPerRule = 32;
};

/// The static FP-error interpretation of one tape.
struct FpErrorResult {
  /// Static local rounding-error bound per node: the shared model
  /// evaluated at the abstract enclosure magnitude.
  std::vector<double> LocalErrorBound;
  /// Per-node upper bound on the summed adjoint magnitudes over every
  /// output seed (adopted from verify/AbsInt.h; zero means the node is
  /// statically dead for significance *and* for rounding error).
  std::vector<double> AdjointMagBound;
  /// Per-node static error-contribution bound:
  /// up(LocalErrorBound * AdjointMagBound), capped at ErrorCap.  Every
  /// honest dynamic contribution is at most this value.
  std::vector<double> ContributionBound;
  /// Upward-rounded sum of the contribution bounds, capped: dominates
  /// every honest total FP error at the outputs.
  double TotalErrorBound = 0.0;
  /// F001/F003 findings (appended by checkDynamicFpError).
  VerifyReport Report;

  bool hasErrors() const { return Report.hasErrors(); }
};

/// Re-derives the static FP-error bounds of \p T from the recorded
/// input enclosures alone, reusing the abstract interpreter of
/// verify/AbsInt.h for enclosures and adjoint magnitude bounds (which
/// is what makes the containment argument against AbsInt a theorem
/// rather than a convention — both families bound the same adjoint
/// recursion).  \p T must already have passed verifyStructure.
FpErrorResult fpErrorInterpret(const Tape &T, std::span<const NodeId> Outputs,
                               const FpErrorOptions &Options = {});

/// SCORPIO-F001/F003: checks freshly computed dynamic per-node FP-error
/// contributions (the FpError backend's nodeSignificances()) against
/// \p R's static bounds and appends findings to \p R.Report.  A node
/// with AdjointMagBound == 0 must contribute exactly zero (F003, the
/// cross-validation against interval significance and AbsInt); live
/// nodes fire F001 above bound * (1 + ErrorSlack).
void checkDynamicFpError(FpErrorResult &R,
                         std::span<const double> Contributions,
                         const FpErrorOptions &Options);

/// SCORPIO-F002/F004: semantic audit of a *persisted* FP-error report
/// (a result-cache entry analysed under the FpError backend) against
/// the static bounds derived from the tape it shipped with — the A004
/// trust model for the F family.  \p StoredTotal is the report's total
/// FP error (its outputSignificance()).  Returns only the audit
/// findings; \p R is the output of fpErrorInterpret over that tape.
VerifyReport auditStoredFpError(const FpErrorResult &R,
                                std::span<const double> Stored,
                                double StoredTotal,
                                const FpErrorOptions &Options);

/// SCORPIO-F005..F008: the mixed-precision lints over \p R's static
/// contribution bounds.  Task groups are the DynDFG levels (the
/// paper's level-based task extraction): per level the contribution
/// bounds are summed, projected to float via FloatDemotionScale, and
/// compared against DemotionTolerance — demotable levels get a SARIF
/// fix-it naming the task group (F005), levels blocked by exactly
/// their largest contributor fire F008.  F006 flags nodes dominating
/// the total bound and F007 totals above OutputErrorTolerance.
VerifyReport lintFpError(const Tape &T, const FpErrorResult &R,
                         const std::vector<NodeId> &Outputs,
                         const std::map<NodeId, std::string> &Labels,
                         const FpErrorOptions &Options);

} // namespace scorpio::verify

#endif // SCORPIO_VERIFY_FPERROR_H
