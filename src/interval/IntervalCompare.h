//===- interval/IntervalCompare.h - Tri-state interval comparisons --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Comparisons between intervals are not always decidable: for c inside
/// [x], "c < [x]" is neither true nor false (paper Section 2.2).  This
/// header provides the tri-state comparison the analysis uses.  When a
/// kernel under analysis branches on an Ambiguous comparison, the analysis
/// run is terminated and the condition is reported to the user — exactly
/// the behaviour the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_INTERVAL_INTERVALCOMPARE_H
#define SCORPIO_INTERVAL_INTERVALCOMPARE_H

#include "interval/Interval.h"

#include <cstdint>

namespace scorpio {

/// Result of comparing two intervals.
enum class Tribool : uint8_t {
  False,    ///< Holds for no pair of points.
  True,     ///< Holds for every pair of points.
  Ambiguous ///< Holds for some pairs and not others.
};

/// [A] < [B]
inline Tribool certainlyLess(const Interval &A, const Interval &B) {
  if (A.upper() < B.lower())
    return Tribool::True;
  if (A.lower() >= B.upper())
    return Tribool::False;
  return Tribool::Ambiguous;
}

/// [A] <= [B]
inline Tribool certainlyLessEqual(const Interval &A, const Interval &B) {
  if (A.upper() <= B.lower())
    return Tribool::True;
  if (A.lower() > B.upper())
    return Tribool::False;
  return Tribool::Ambiguous;
}

/// [A] > [B]
inline Tribool certainlyGreater(const Interval &A, const Interval &B) {
  return certainlyLess(B, A);
}

/// [A] >= [B]
inline Tribool certainlyGreaterEqual(const Interval &A, const Interval &B) {
  return certainlyLessEqual(B, A);
}

/// True iff the comparison is decidable for every point pair.
inline bool isDecided(Tribool T) { return T != Tribool::Ambiguous; }

/// Converts a decided Tribool to bool; asserts on Ambiguous.
inline bool decidedValue(Tribool T) {
  assert(isDecided(T) && "branching on an ambiguous interval comparison");
  return T == Tribool::True;
}

} // namespace scorpio

#endif // SCORPIO_INTERVAL_INTERVALCOMPARE_H
