//===- interval/Interval.h - Outward-rounded interval arithmetic ----------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval arithmetic (IA) over doubles with outward rounding, replacing
/// the FILIB++ base type the paper's dco/scorpio specialization used
/// (Section 2.3, reference [19]).
///
/// The fundamental contract is *containment* (paper Eq. 4-6): for every
/// operation `op`, `op(Interval(A), Interval(B))` encloses
/// `{op(a, b) | a in A, b in B}`.  Bounds computed in double precision are
/// nudged outward by a couple of ULPs, which is conservative for the
/// at-most-1-ulp error of IEEE basic operations and the few-ulp error of
/// common libm implementations.
///
/// Relational operators on overlapping intervals are not decidable
/// (Section 2.2 of the paper); \see IntervalCompare.h for the tri-state
/// comparison interface used by analysed kernels.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_INTERVAL_INTERVAL_H
#define SCORPIO_INTERVAL_INTERVAL_H

#include "support/Diag.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <limits>

namespace scorpio {

/// A closed interval [Lo, Hi] of doubles with outward-rounded arithmetic.
///
/// Invariant: Lo <= Hi, and neither bound is NaN.  Infinite bounds are
/// allowed; `Interval::entire()` is the whole real line and results from
/// undefined situations such as division by an interval containing zero.
class Interval {
public:
  /// Constructs the degenerate interval [0, 0].
  Interval() : Lo(0.0), Hi(0.0) {}

  /// Constructs the degenerate (point) interval [X, X].
  /*implicit*/ Interval(double X) : Lo(X), Hi(X) {
    assert(!std::isnan(X) && "NaN interval bound");
  }

  /// Constructs [Lo, Hi]; requires Lo <= Hi.
  Interval(double Lo, double Hi) : Lo(Lo), Hi(Hi) {
    assert(!(std::isnan(Lo) || std::isnan(Hi)) && "NaN interval bound");
    assert(Lo <= Hi && "inverted interval bounds");
  }

  /// The whole real line [-inf, +inf].
  static Interval entire();

  /// An interval centered at \p Mid with radius \p Rad >= 0.  A NaN
  /// center/radius or a negative radius records a structured diagnostic
  /// (domain_error) and recovers with entire(), the containment-safe
  /// enclosure of "unknown".
  static Interval centered(double Mid, double Rad);

  /// The smallest interval containing both \p X and \p Y (which may be
  /// given in either order).
  static Interval ordered(double X, double Y);

  double lower() const { return Lo; }
  double upper() const { return Hi; }

  /// Width w([x]) = Hi - Lo (paper Section 2.1).  +inf for unbounded
  /// intervals; the width of a point interval is 0.
  double width() const;

  /// Midpoint (Lo + Hi) / 2, computed overflow-safely.
  double mid() const;

  /// Radius = width / 2.
  double rad() const { return 0.5 * width(); }

  /// Magnitude: max |x| over the interval.
  double mag() const { return std::max(std::fabs(Lo), std::fabs(Hi)); }

  /// Mignitude: min |x| over the interval (0 if the interval contains 0).
  double mig() const;

  /// True iff the interval is a single point.
  bool isPoint() const { return Lo == Hi; }

  /// True iff both bounds are finite.
  bool isBounded() const { return std::isfinite(Lo) && std::isfinite(Hi); }

  /// True iff \p X lies in [Lo, Hi].
  bool contains(double X) const { return Lo <= X && X <= Hi; }

  /// True iff \p Other is a subset of this interval.
  bool contains(const Interval &Other) const {
    return Lo <= Other.Lo && Other.Hi <= Hi;
  }

  /// True iff the two intervals share at least one point.
  bool intersects(const Interval &Other) const {
    return Lo <= Other.Hi && Other.Lo <= Hi;
  }

  /// Exact bound equality (not a set relation on overlapping intervals).
  bool operator==(const Interval &Other) const {
    return Lo == Other.Lo && Hi == Other.Hi;
  }
  bool operator!=(const Interval &Other) const { return !(*this == Other); }

  Interval operator-() const { return Interval(-Hi, -Lo); }

  Interval &operator+=(const Interval &B) { return *this = *this + B; }
  Interval &operator-=(const Interval &B) { return *this = *this - B; }
  Interval &operator*=(const Interval &B) { return *this = *this * B; }
  Interval &operator/=(const Interval &B) { return *this = *this / B; }

  friend Interval operator+(const Interval &A, const Interval &B);
  friend Interval operator-(const Interval &A, const Interval &B);
  friend Interval operator*(const Interval &A, const Interval &B);
  /// Division; returns entire() if B contains zero.  Unbounded operands
  /// are handled with the limit convention inf/inf -> 0 for the
  /// indeterminate corner quotients (the adjacent corners supply the
  /// +-inf bounds), so no NaN can reach the result.
  friend Interval operator/(const Interval &A, const Interval &B);

private:
  double Lo, Hi;
};

/// Convex hull of two intervals.
Interval hull(const Interval &A, const Interval &B);

/// Intersection; requires the intervals to intersect.  On disjoint
/// inputs (the intersection is the empty set, which Interval cannot
/// represent) records a structured diagnostic (domain_error) and
/// recovers with the *gap hull* — the interval between the facing
/// endpoints — which is a containment-safe superset of the empty true
/// intersection.  Callers that expect disjointness should use
/// tryIntersect instead.
Interval intersect(const Interval &A, const Interval &B);

/// Probing intersection: the intersection when the operands share at
/// least one point, otherwise a domain_error Status.  Never records a
/// diagnostic — disjointness is an expected answer here, not an API
/// violation.
diag::Expected<Interval> tryIntersect(const Interval &A, const Interval &B);

/// x^2 as a single dependent operation (tighter than x*x).
Interval sqr(const Interval &X);

Interval sqrt(const Interval &X); ///< Domain clamped to [0, inf).
Interval exp(const Interval &X);
Interval log(const Interval &X); ///< Domain clamped to (0, inf).
Interval sin(const Interval &X);
Interval cos(const Interval &X);
Interval tan(const Interval &X); ///< entire() when crossing an asymptote.
Interval atan(const Interval &X);
Interval erf(const Interval &X);
Interval fabs(const Interval &X);

/// x^N for integer N; exact monotonicity case analysis (no log/exp).
Interval pow(const Interval &X, int N);

/// x^y for general exponent via exp(y * log(x)); domain of X clamped to
/// (0, inf) as in real-valued pow.
Interval pow(const Interval &X, const Interval &Y);

Interval min(const Interval &A, const Interval &B);
Interval max(const Interval &A, const Interval &B);

/// Round-half-away-from-zero applied to both bounds — the natural IA
/// enclosure of std::round over the interval.
Interval round(const Interval &X);

/// Reciprocal 1/x; entire() if X contains zero.
Interval recip(const Interval &X);

/// The scaled tangent cardinal g(x) = tan(x * Phi) / x for x >= 0, with
/// the removable singularity filled in: g(0) = Phi.
///
/// Computing tan(x*Phi)/x as two separate interval operations suffers
/// catastrophic dependency overestimation near x = 0 (the numerator and
/// denominator are perfectly correlated).  This is the paper's
/// Section-2.2 "special interval algorithms required" situation; g is
/// monotonically increasing on [0, pi/(2*Phi)), so a dedicated endpoint
/// evaluation is exact up to rounding.  Returns entire() when X leaves
/// that domain.
Interval tanOverX(const Interval &X, double Phi);

/// Scalar version of tanOverX (Taylor-guarded near 0).
double tanOverXPoint(double X, double Phi);

/// Overload so kernels templated over double/IAValue can call tanOverX
/// unqualified in both instantiations.
inline double tanOverX(double X, double Phi) {
  return tanOverXPoint(X, Phi);
}

/// Derivative g'(x) of tanOverX at a point (0 at x = 0).
double tanOverXDerivPoint(double X, double Phi);

std::ostream &operator<<(std::ostream &OS, const Interval &X);

namespace detail {

// stepDown/stepUp are bit-manipulation equivalents of
// std::nextafter(X, -inf) / std::nextafter(X, +inf).  The reverse sweep
// performs two of them per adjoint mult-add; the libm call (which must
// support errno) is the single largest cost in a sweep, so they are
// inlined here.  interval_test pins them against std::nextafter across
// zeros, subnormals, extremes, infinities and NaN.

/// Next double below \p X (identity on -inf).
inline double stepDown(double X) {
  if (std::isnan(X) || X == -std::numeric_limits<double>::infinity())
    return X;
  std::uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  if (X == 0.0)
    B = 0x8000000000000001ULL; // -0x1p-1074, below both zeros
  else if (B >> 63)
    ++B; // negative: magnitude grows
  else
    --B; // positive: magnitude shrinks (+0x1p-1074 steps to +0)
  std::memcpy(&X, &B, sizeof(X));
  return X;
}

/// Next double above \p X (identity on +inf).
inline double stepUp(double X) {
  if (std::isnan(X) || X == std::numeric_limits<double>::infinity())
    return X;
  std::uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  if (X == 0.0)
    B = 1; // +0x1p-1074, above both zeros
  else if (B >> 63)
    --B; // negative: magnitude shrinks (-0x1p-1074 steps to -0)
  else
    ++B; // positive: magnitude grows
  std::memcpy(&X, &B, sizeof(X));
  return X;
}

/// Widens [Lo, Hi] outward by \p Ulps steps on each side.
inline Interval outward(double Lo, double Hi, int Ulps) {
  for (int I = 0; I < Ulps; ++I) {
    Lo = stepDown(Lo);
    Hi = stepUp(Hi);
  }
  return Interval(Lo, Hi);
}

/// Bound product treating 0 * inf as 0 (the interval-arithmetic
/// convention: the zero factor is an exact point, so the product set is
/// exactly {0}).
inline double mulBound(double A, double B) {
  if (A == 0.0 || B == 0.0)
    return 0.0;
  return A * B;
}

} // namespace detail

// The sweep-hot arithmetic is defined inline: a per-output reverse
// sweep executes one + and one * per (node, argument) pair, and the
// call into a separate translation unit costs more than the arithmetic.

inline Interval operator+(const Interval &A, const Interval &B) {
  // An exact zero operand leaves the other side untouched — adjoint
  // accumulations start from [0, 0] and must not widen on the first
  // contribution.
  if (A.Lo == 0.0 && A.Hi == 0.0)
    return B;
  if (B.Lo == 0.0 && B.Hi == 0.0)
    return A;
  return detail::outward(A.Lo + B.Lo, A.Hi + B.Hi, 1);
}

inline Interval operator-(const Interval &A, const Interval &B) {
  if (B.Lo == 0.0 && B.Hi == 0.0)
    return A;
  if (A.Lo == 0.0 && A.Hi == 0.0)
    return -B;
  return detail::outward(A.Lo - B.Hi, A.Hi - B.Lo, 1);
}

inline Interval operator*(const Interval &A, const Interval &B) {
  // An exact zero factor gives an exact zero product; do not widen, so
  // that zero adjoints/partials stay exactly zero (the "significance 0
  // means replaceable by a constant" guarantee).
  if ((A.Lo == 0.0 && A.Hi == 0.0) || (B.Lo == 0.0 && B.Hi == 0.0))
    return Interval(0.0, 0.0);
  const double P1 = detail::mulBound(A.Lo, B.Lo);
  const double P2 = detail::mulBound(A.Lo, B.Hi);
  const double P3 = detail::mulBound(A.Hi, B.Lo);
  const double P4 = detail::mulBound(A.Hi, B.Hi);
  const double Lo = std::min(std::min(P1, P2), std::min(P3, P4));
  const double Hi = std::max(std::max(P1, P2), std::max(P3, P4));
  return detail::outward(Lo, Hi, 1);
}

} // namespace scorpio

#endif // SCORPIO_INTERVAL_INTERVAL_H
