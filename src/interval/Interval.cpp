//===- interval/Interval.cpp - Outward-rounded interval arithmetic -------===//

#include "interval/Interval.h"

#include <algorithm>
#include <limits>
#include <ostream>

using namespace scorpio;

static constexpr double Inf = std::numeric_limits<double>::infinity();
static constexpr double Pi = 3.14159265358979323846264338327950288;
static constexpr double HalfPi = Pi / 2.0;

// stepDown/stepUp/outward and the +, -, * operators live inline in
// Interval.h: the reverse sweep calls them per tape node, and the
// cross-TU call plus libm nextafter dominated sweep time.

Interval Interval::entire() { return Interval(-Inf, Inf); }

Interval Interval::centered(double Mid, double Rad) {
  SCORPIO_REQUIRE(!std::isnan(Mid) && !std::isnan(Rad),
                  diag::ErrC::DomainError,
                  "Interval::centered: NaN center or radius",
                  Interval::entire());
  SCORPIO_REQUIRE(Rad >= 0.0, diag::ErrC::DomainError,
                  "Interval::centered: negative radius",
                  Interval::entire());
  return detail::outward(Mid - Rad, Mid + Rad, 1);
}

Interval Interval::ordered(double X, double Y) {
  return Interval(std::min(X, Y), std::max(X, Y));
}

double Interval::width() const {
  if (Lo == -Inf || Hi == Inf)
    return Inf;
  // IEEE subtraction is exactly rounded; in particular the width of a
  // point interval is exactly 0 (a zero-significance guarantee that the
  // Maclaurin term0 result of Figure 3 depends on).
  return Hi - Lo;
}

double Interval::mid() const {
  if (Lo == -Inf && Hi == Inf)
    return 0.0;
  if (Lo == -Inf)
    return -std::numeric_limits<double>::max();
  if (Hi == Inf)
    return std::numeric_limits<double>::max();
  const double M = 0.5 * (Lo + Hi);
  if (std::isfinite(M))
    return M;
  return 0.5 * Lo + 0.5 * Hi;
}

double Interval::mig() const {
  if (contains(0.0))
    return 0.0;
  return std::min(std::fabs(Lo), std::fabs(Hi));
}

namespace scorpio {

/// Corner quotient for division bounds.  When both endpoints are
/// infinite, IEEE gives NaN, which would poison the min/max fold below
/// (std::min/std::max are not NaN-symmetric).  Within the operand box the
/// quotient set near such a corner spans from 0 towards the signed
/// infinity, and the adjacent corners (finite/inf = 0 and inf/finite =
/// +-inf) already contribute both extremes; substituting 0 for the
/// indeterminate corner therefore never narrows the true range.  The
/// directed outward rounding applied to the fold keeps the enclosure
/// conservative.
static double divBound(double X, double Y) {
  if (std::isinf(X) && std::isinf(Y))
    return 0.0;
  return X / Y;
}

Interval operator/(const Interval &A, const Interval &B) {
  if (B.contains(0.0))
    return Interval::entire();
  const double Q1 = divBound(A.Lo, B.Lo);
  const double Q2 = divBound(A.Lo, B.Hi);
  const double Q3 = divBound(A.Hi, B.Lo);
  const double Q4 = divBound(A.Hi, B.Hi);
  const double Lo = std::min(std::min(Q1, Q2), std::min(Q3, Q4));
  const double Hi = std::max(std::max(Q1, Q2), std::max(Q3, Q4));
  return detail::outward(Lo, Hi, 1);
}

} // namespace scorpio

Interval scorpio::hull(const Interval &A, const Interval &B) {
  return Interval(std::min(A.lower(), B.lower()),
                  std::max(A.upper(), B.upper()));
}

Interval scorpio::intersect(const Interval &A, const Interval &B) {
  // Disjoint operands: the true intersection is the empty set, which
  // Interval cannot represent — a Release build of the old assert-only
  // version returned an *inverted* interval here.  Recover with the gap
  // hull [min(uppers), max(lowers)]: any interval is a superset of the
  // empty set, so containment is preserved, and the gap hull is the
  // tightest choice touching both operands.
  SCORPIO_REQUIRE(A.intersects(B), diag::ErrC::DomainError,
                  "intersect: disjoint intervals (empty intersection)",
                  Interval::ordered(std::max(A.lower(), B.lower()),
                                    std::min(A.upper(), B.upper())));
  return Interval(std::max(A.lower(), B.lower()),
                  std::min(A.upper(), B.upper()));
}

diag::Expected<Interval> scorpio::tryIntersect(const Interval &A,
                                               const Interval &B) {
  if (!A.intersects(B))
    return diag::Status::error(diag::ErrC::DomainError,
                               "tryIntersect: disjoint intervals");
  return Interval(std::max(A.lower(), B.lower()),
                  std::min(A.upper(), B.upper()));
}

Interval scorpio::sqr(const Interval &X) {
  const double MagLo = X.mig();
  const double MagHi = X.mag();
  const double Lo =
      MagLo == 0.0 ? 0.0 : detail::stepDown(MagLo * MagLo);
  return Interval(Lo, detail::stepUp(MagHi * MagHi));
}

Interval scorpio::sqrt(const Interval &X) {
  const double Lo = std::max(X.lower(), 0.0);
  const double Hi = std::max(X.upper(), 0.0);
  const double SLo = std::max(0.0, detail::stepDown(std::sqrt(Lo)));
  const double SHi = detail::stepUp(std::sqrt(Hi));
  return Interval(SLo, SHi);
}

Interval scorpio::exp(const Interval &X) {
  const double Lo = std::max(0.0, detail::stepDown(
                                      detail::stepDown(std::exp(X.lower()))));
  const double Hi = detail::stepUp(detail::stepUp(std::exp(X.upper())));
  return Interval(Lo, Hi);
}

Interval scorpio::log(const Interval &X) {
  if (X.upper() <= 0.0)
    return Interval::entire();
  const double Lo =
      X.lower() <= 0.0
          ? -Inf
          : detail::stepDown(detail::stepDown(std::log(X.lower())));
  const double Hi = detail::stepUp(detail::stepUp(std::log(X.upper())));
  return Interval(Lo, Hi);
}

/// Shared kernel for sin/cos range computation.  Extrema of the function
/// lie at Phase + k*pi for integer k, with value +1 for even k and -1 for
/// odd k; between consecutive extrema the function is monotone, so the
/// range is the hull of endpoint values plus any enclosed extremum.
static Interval trigRange(const Interval &X, double Phase, double FLo,
                          double FHi) {
  if (!X.isBounded() || X.width() >= 2.0 * Pi || X.mag() > 1e15)
    return Interval(-1.0, 1.0);
  double Lo = std::min(FLo, FHi);
  double Hi = std::max(FLo, FHi);
  const double KLo = std::ceil((X.lower() - Phase) / Pi);
  const double KHi = std::floor((X.upper() - Phase) / Pi);
  for (double K = KLo; K <= KHi; K += 1.0) {
    const bool Even = std::fmod(K, 2.0) == 0.0;
    if (Even)
      Hi = 1.0;
    else
      Lo = -1.0;
  }
  Lo = std::max(-1.0, detail::stepDown(detail::stepDown(Lo)));
  Hi = std::min(1.0, detail::stepUp(detail::stepUp(Hi)));
  return Interval(Lo, Hi);
}

Interval scorpio::sin(const Interval &X) {
  return trigRange(X, HalfPi, std::sin(X.lower()), std::sin(X.upper()));
}

Interval scorpio::cos(const Interval &X) {
  return trigRange(X, 0.0, std::cos(X.lower()), std::cos(X.upper()));
}

Interval scorpio::tan(const Interval &X) {
  if (!X.isBounded() || X.width() >= Pi || X.mag() > 1e15)
    return Interval::entire();
  // tan has an asymptote at pi/2 + k*pi; the interval crosses one iff the
  // half-period indices of its endpoints differ.
  const double KLo = std::floor((X.lower() - HalfPi) / Pi);
  const double KHi = std::floor((X.upper() - HalfPi) / Pi);
  if (KLo != KHi)
    return Interval::entire();
  return detail::outward(std::tan(X.lower()), std::tan(X.upper()), 2);
}

Interval scorpio::atan(const Interval &X) {
  const double Lo =
      std::max(-HalfPi, detail::stepDown(detail::stepDown(
                            std::atan(X.lower()))));
  const double Hi = std::min(
      HalfPi, detail::stepUp(detail::stepUp(std::atan(X.upper()))));
  return Interval(Lo, Hi);
}

Interval scorpio::erf(const Interval &X) {
  const double Lo = std::max(
      -1.0, detail::stepDown(detail::stepDown(std::erf(X.lower()))));
  const double Hi =
      std::min(1.0, detail::stepUp(detail::stepUp(std::erf(X.upper()))));
  return Interval(Lo, Hi);
}

Interval scorpio::fabs(const Interval &X) {
  if (X.lower() >= 0.0)
    return X;
  if (X.upper() <= 0.0)
    return -X;
  return Interval(0.0, X.mag());
}

Interval scorpio::pow(const Interval &X, int N) {
  if (N == 0)
    return Interval(1.0, 1.0);
  if (N < 0)
    return recip(pow(X, -N));
  if (N == 1)
    return X;
  auto IPow = [](double Base, int E) {
    double R = 1.0;
    double B = Base;
    for (int K = E; K > 0; K >>= 1) {
      if (K & 1)
        R *= B;
      B *= B;
    }
    return R;
  };
  if (N % 2 == 0) {
    const Interval R = detail::outward(IPow(X.mig(), N), IPow(X.mag(), N), N);
    return Interval(std::max(0.0, R.lower()), R.upper());
  }
  return detail::outward(IPow(X.lower(), N), IPow(X.upper(), N), N);
}

Interval scorpio::pow(const Interval &X, const Interval &Y) {
  if (X.upper() <= 0.0)
    return Interval::entire();
  const double Lo = std::max(X.lower(), std::numeric_limits<double>::min());
  return exp(Y * log(Interval(Lo, std::max(Lo, X.upper()))));
}

Interval scorpio::min(const Interval &A, const Interval &B) {
  return Interval(std::min(A.lower(), B.lower()),
                  std::min(A.upper(), B.upper()));
}

Interval scorpio::max(const Interval &A, const Interval &B) {
  return Interval(std::max(A.lower(), B.lower()),
                  std::max(A.upper(), B.upper()));
}

Interval scorpio::round(const Interval &X) {
  return Interval(std::round(X.lower()), std::round(X.upper()));
}

Interval scorpio::recip(const Interval &X) {
  return Interval(1.0) / X;
}

double scorpio::tanOverXPoint(double X, double Phi) {
  assert(X >= 0.0 && "tanOverX domain is x >= 0");
  const double U = X * Phi;
  if (U < 1e-4) {
    // tan(u)/u = 1 + u^2/3 + 2u^4/15 + ...
    const double U2 = U * U;
    return Phi * (1.0 + U2 / 3.0 + 2.0 * U2 * U2 / 15.0);
  }
  return std::tan(U) / X;
}

double scorpio::tanOverXDerivPoint(double X, double Phi) {
  assert(X >= 0.0 && "tanOverX domain is x >= 0");
  const double U = X * Phi;
  if (U < 1e-4) {
    // g'(x) = 2*Phi^3*x/3 + 8*Phi^5*x^3/15 + ...
    return 2.0 * Phi * Phi * Phi * X / 3.0 +
           8.0 * std::pow(Phi, 5) * X * X * X / 15.0;
  }
  const double Sec = 1.0 / std::cos(U);
  return (Phi * X * Sec * Sec - std::tan(U)) / (X * X);
}

Interval scorpio::tanOverX(const Interval &X, double Phi) {
  SCORPIO_REQUIRE(Phi > 0.0, diag::ErrC::DomainError,
                  "tanOverX: lens angle must be positive",
                  Interval::entire());
  if (X.lower() < 0.0 || !X.isBounded() || X.upper() * Phi >= HalfPi)
    return Interval::entire();
  // g is monotone increasing on the domain: endpoint evaluation.
  return detail::outward(tanOverXPoint(X.lower(), Phi),
                         tanOverXPoint(X.upper(), Phi), 4);
}

std::ostream &scorpio::operator<<(std::ostream &OS, const Interval &X) {
  return OS << "[" << X.lower() << ", " << X.upper() << "]";
}
