//===- support/Diag.cpp - Structured diagnostics implementation ----------===//

#include "support/Diag.h"

#include "support/Json.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <sstream>

using namespace scorpio;
using namespace scorpio::diag;

const char *scorpio::diag::errName(ErrC Code) {
  switch (Code) {
  case ErrC::Ok:
    return "ok";
  case ErrC::InvalidArgument:
    return "invalid_argument";
  case ErrC::DomainError:
    return "domain_error";
  case ErrC::SizeMismatch:
    return "size_mismatch";
  case ErrC::EmptyInput:
    return "empty_input";
  case ErrC::OutOfRange:
    return "out_of_range";
  case ErrC::InvalidState:
    return "invalid_state";
  case ErrC::Internal:
    return "internal";
  }
  return "?";
}

std::string Status::toString() const {
  if (isOk())
    return "ok";
  std::ostringstream OS;
  OS << errName(Code) << ": " << Message;
  if (Loc.File && Loc.File[0] != '\0')
    OS << " (" << Loc.File << ":" << Loc.Line << ")";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// DiagSink
//===----------------------------------------------------------------------===//

struct DiagSink::Impl {
  mutable std::mutex Mutex;
  std::vector<DiagRecord> Records;
  uint64_t NextSeq = 0;
};

DiagSink::Impl &DiagSink::impl() const {
  // One process-wide store, constructed on first use and intentionally
  // leaked so checks firing during static destruction stay safe.
  static Impl *I = new Impl();
  return *I;
}

DiagSink &DiagSink::global() {
  static DiagSink Sink;
  return Sink;
}

uint64_t DiagSink::report(ErrC Code, const char *File, int Line,
                          std::string Message) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  DiagRecord R;
  R.Code = Code;
  R.Message = std::move(Message);
  R.File = File ? File : "";
  R.Line = Line;
  R.Seq = I.NextSeq++;
  I.Records.push_back(std::move(R));
  return I.Records.back().Seq;
}

size_t DiagSink::count() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Records.size();
}

size_t DiagSink::countOf(ErrC Code) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  size_t N = 0;
  for (const DiagRecord &R : I.Records)
    if (R.Code == Code)
      ++N;
  return N;
}

std::vector<DiagRecord> DiagSink::records() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  return I.Records;
}

DiagRecord DiagSink::last() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  if (I.Records.empty())
    return DiagRecord();
  return I.Records.back();
}

void DiagSink::clear() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  I.Records.clear();
}

void DiagSink::writeJson(std::ostream &OS) const {
  const std::vector<DiagRecord> Snapshot = records();
  JsonWriter J(OS);
  J.beginArray();
  for (const DiagRecord &R : Snapshot) {
    J.beginObject();
    J.key("code").value(static_cast<long long>(R.Code));
    J.key("name").value(errName(R.Code));
    J.key("message").value(R.Message);
    J.key("file").value(R.File);
    J.key("line").value(R.Line);
    J.key("seq").value(static_cast<long long>(R.Seq));
    J.endObject();
  }
  J.endArray();
}

//===----------------------------------------------------------------------===//
// CheckPolicy
//===----------------------------------------------------------------------===//

static std::atomic<CheckPolicy> ActivePolicy{CheckPolicy::ReturnStatus};

CheckPolicy scorpio::diag::checkPolicy() {
  return ActivePolicy.load(std::memory_order_relaxed);
}

void scorpio::diag::setCheckPolicy(CheckPolicy Policy) {
  ActivePolicy.store(Policy, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// DiagTestHook
//===----------------------------------------------------------------------===//

namespace {
struct HookState {
  std::mutex Mutex;
  std::string Pattern;
  int Remaining = 0;
};
std::atomic<bool> HookArmed{false};

HookState &hookState() {
  static HookState *S = new HookState();
  return *S;
}
} // namespace

void DiagTestHook::arm(std::string SitePattern, int Count) {
  HookState &S = hookState();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Pattern = std::move(SitePattern);
  S.Remaining = Count;
  HookArmed.store(Count > 0, std::memory_order_release);
}

void DiagTestHook::disarm() {
  HookState &S = hookState();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Pattern.clear();
  S.Remaining = 0;
  HookArmed.store(false, std::memory_order_release);
}

bool DiagTestHook::armed() {
  return HookArmed.load(std::memory_order_acquire);
}

bool DiagTestHook::shouldFail(const char *Site) {
  HookState &S = hookState();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Remaining <= 0 || !Site)
    return false;
  if (std::string(Site).find(S.Pattern) == std::string::npos)
    return false;
  if (--S.Remaining == 0)
    HookArmed.store(false, std::memory_order_release);
  return true;
}

//===----------------------------------------------------------------------===//
// Failure reporting
//===----------------------------------------------------------------------===//

static void printRecord(ErrC Code, const char *File, int Line,
                        const char *Message) {
  std::fprintf(stderr, "scorpio: check failed [%s] %s (%s:%d)\n",
               errName(Code), Message, File ? File : "?", Line);
  std::fflush(stderr);
}

Status scorpio::diag::reportFailure(ErrC Code, const char *File, int Line,
                                    const char *Message) {
  DiagSink::global().report(Code, File, Line, Message);
  const CheckPolicy Policy = checkPolicy();
  if (Policy != CheckPolicy::ReturnStatus)
    printRecord(Code, File, Line, Message);
  if (Policy == CheckPolicy::Trap)
    std::abort();
  return Status::error(Code, Message, SourceLoc{File, Line});
}

void scorpio::diag::reportFatal(ErrC Code, const char *File, int Line,
                                const char *Message) {
  DiagSink::global().report(Code, File, Line, Message);
  printRecord(Code, File, Line, Message);
  std::abort();
}
