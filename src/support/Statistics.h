//===- support/Statistics.h - Running and batch statistics ----------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numerically stable summary statistics.  The significance-variance level
/// detector of Algorithm 1 (step S5) uses these to decide at which DynDFG
/// level node significances start to diverge.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_STATISTICS_H
#define SCORPIO_SUPPORT_STATISTICS_H

#include <cstddef>
#include <span>

namespace scorpio {

/// Welford-style running accumulator for mean and variance.
class RunningStats {
public:
  /// Adds one observation.
  void add(double X);

  /// Number of observations seen so far.
  size_t count() const { return N; }

  /// Arithmetic mean; 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Population variance (divides by N); 0 for fewer than two samples.
  double variance() const { return N > 1 ? M2 / static_cast<double>(N) : 0.0; }

  /// Sample variance (divides by N-1); 0 for fewer than two samples.
  double sampleVariance() const {
    return N > 1 ? M2 / static_cast<double>(N - 1) : 0.0;
  }

  /// Population standard deviation.
  double stddev() const;

  /// Smallest observation; +inf when empty.
  double min() const { return Min; }

  /// Largest observation; -inf when empty.
  double max() const { return Max; }

  /// Coefficient of variation (stddev / |mean|); 0 when the mean is 0.
  double coefficientOfVariation() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats &Other);

  RunningStats();

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min;
  double Max;
};

/// Convenience batch helpers.
double mean(std::span<const double> Xs);
double variance(std::span<const double> Xs);
double stddev(std::span<const double> Xs);
double median(std::span<const double> Xs);

} // namespace scorpio

#endif // SCORPIO_SUPPORT_STATISTICS_H
