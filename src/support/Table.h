//===- support/Table.h - Console table and CSV emission -------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small text-table builder used by the benchmark harnesses to print the
/// rows of the paper's tables and figure series in a uniform format, and to
/// optionally dump the same data as CSV for plotting.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_TABLE_H
#define SCORPIO_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace scorpio {

/// Collects rows of string cells and renders them column-aligned.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a fully formatted row; must match the header arity.
  void addRow(std::vector<std::string> Cells);

  /// Number of data rows.
  size_t numRows() const { return Rows.size(); }

  /// Renders an aligned ASCII table.
  void print(std::ostream &OS) const;

  /// Renders RFC-4180-ish CSV (cells containing ',' or '"' get quoted).
  void printCsv(std::ostream &OS) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats \p X with \p Digits significant decimal digits.
std::string formatDouble(double X, int Digits = 4);

/// Formats \p X as a fixed-point value with \p Decimals digits.
std::string formatFixed(double X, int Decimals = 2);

/// Formats \p X as a percentage ("12.3%") with one decimal.
std::string formatPercent(double X);

} // namespace scorpio

#endif // SCORPIO_SUPPORT_TABLE_H
