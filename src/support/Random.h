//===- support/Random.h - Deterministic random number generation ---------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic pseudo-random number generator (xoshiro256++)
/// used by workload generators and property tests.  All scorpio workloads
/// are seeded explicitly so every benchmark run is bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_RANDOM_H
#define SCORPIO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace scorpio {

/// Deterministic xoshiro256++ generator.
///
/// The generator is seeded through splitmix64 so that any 64-bit seed,
/// including 0, produces a well-mixed state.
class Random {
public:
  explicit Random(uint64_t Seed = 0x5eed5c0421065eedULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound);

  /// Returns an integer uniformly distributed in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Returns a sample from the standard normal distribution
  /// (Marsaglia polar method).
  double gaussian();

  /// Returns a sample from N(Mean, Sigma^2).
  double gaussian(double Mean, double Sigma) {
    return Mean + Sigma * gaussian();
  }

private:
  uint64_t State[4];
  bool HasSpareGaussian = false;
  double SpareGaussian = 0.0;
};

} // namespace scorpio

#endif // SCORPIO_SUPPORT_RANDOM_H
