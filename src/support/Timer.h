//===- support/Timer.h - Wall-clock timing ---------------------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal steady-clock stopwatch used by the energy model and the
/// benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_TIMER_H
#define SCORPIO_SUPPORT_TIMER_H

#include <chrono>

namespace scorpio {

/// A resettable stopwatch over std::chrono::steady_clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace scorpio

#endif // SCORPIO_SUPPORT_TIMER_H
