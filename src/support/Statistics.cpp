//===- support/Statistics.cpp - Summary statistics implementation --------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

using namespace scorpio;

RunningStats::RunningStats()
    : Min(std::numeric_limits<double>::infinity()),
      Max(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double X) {
  ++N;
  const double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  Min = std::min(Min, X);
  Max = std::max(Max, X);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficientOfVariation() const {
  const double M = mean();
  if (M == 0.0)
    return 0.0;
  return stddev() / std::fabs(M);
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  const double Total = static_cast<double>(N + Other.N);
  const double Delta = Other.Mean - Mean;
  const double NewMean = Mean + Delta * static_cast<double>(Other.N) / Total;
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) / Total;
  Mean = NewMean;
  N += Other.N;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

double scorpio::mean(std::span<const double> Xs) {
  RunningStats S;
  for (double X : Xs)
    S.add(X);
  return S.mean();
}

double scorpio::variance(std::span<const double> Xs) {
  RunningStats S;
  for (double X : Xs)
    S.add(X);
  return S.variance();
}

double scorpio::stddev(std::span<const double> Xs) {
  return std::sqrt(variance(Xs));
}

double scorpio::median(std::span<const double> Xs) {
  if (Xs.empty())
    return 0.0;
  std::vector<double> Copy(Xs.begin(), Xs.end());
  std::sort(Copy.begin(), Copy.end());
  const size_t Mid = Copy.size() / 2;
  if (Copy.size() % 2 == 1)
    return Copy[Mid];
  return 0.5 * (Copy[Mid - 1] + Copy[Mid]);
}
