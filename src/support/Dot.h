//===- support/Dot.h - Graphviz DOT emission helpers ----------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny builder for Graphviz DOT files.  The DynDFG (Figures 1-3 of the
/// paper) is exported through this so a developer can "visualize the
/// significance for different parts of the computation" (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_DOT_H
#define SCORPIO_SUPPORT_DOT_H

#include <ostream>
#include <string>
#include <vector>

namespace scorpio {

/// Accumulates nodes and edges and writes a `digraph`.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName = "G")
      : GraphName(std::move(GraphName)) {}

  /// Adds a node; \p Attrs is a raw attribute list such as
  /// `label="u3", shape=box`.
  void addNode(const std::string &Id, const std::string &Attrs);

  /// Adds a directed edge From -> To with optional attributes.
  void addEdge(const std::string &From, const std::string &To,
               const std::string &Attrs = "");

  /// Writes the complete digraph.
  void write(std::ostream &OS) const;

  /// Escapes a string for use inside a DOT label.
  static std::string escape(const std::string &S);

private:
  std::string GraphName;
  std::vector<std::string> Lines;
};

} // namespace scorpio

#endif // SCORPIO_SUPPORT_DOT_H
