//===- support/Json.h - Minimal JSON emission ------------------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer used to export analysis reports in a
/// machine-readable form (AnalysisResult::writeJson), so external
/// tooling can consume significance data without parsing tables.
/// Write-only by design: the project never needs to *read* JSON.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_JSON_H
#define SCORPIO_SUPPORT_JSON_H

#include <ostream>
#include <string>
#include <vector>

namespace scorpio {

/// Streaming writer producing syntactically valid JSON.  Usage:
///
/// \code
///   JsonWriter J(OS);
///   J.beginObject();
///   J.key("name").value("sobel");
///   J.key("sig").beginArray();
///   J.value(1.0).value(0.5);
///   J.endArray();
///   J.endObject();
/// \endcode
///
/// The writer tracks nesting and comma placement; mismatched begin/end
/// pairs are caught by assertions.
class JsonWriter {
public:
  explicit JsonWriter(std::ostream &OS) : OS(OS) {}
  ~JsonWriter();

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be inside an object and followed by
  /// exactly one value (or container).
  JsonWriter &key(const std::string &Name);

  JsonWriter &value(const std::string &S);
  JsonWriter &value(const char *S) { return value(std::string(S)); }
  JsonWriter &value(double X);
  JsonWriter &value(long long X);
  JsonWriter &value(int X) { return value(static_cast<long long>(X)); }
  JsonWriter &value(size_t X) {
    return value(static_cast<long long>(X));
  }
  JsonWriter &value(bool B);
  JsonWriter &null();

  /// Escapes a string per RFC 8259 (quotes, backslash, control chars).
  static std::string escape(const std::string &S);

private:
  void beforeValue();

  enum class Frame : uint8_t { Object, Array };
  std::ostream &OS;
  std::vector<Frame> Stack;
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

} // namespace scorpio

#endif // SCORPIO_SUPPORT_JSON_H
