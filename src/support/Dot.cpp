//===- support/Dot.cpp - Graphviz DOT emission helpers --------------------===//

#include "support/Dot.h"

using namespace scorpio;

void DotWriter::addNode(const std::string &Id, const std::string &Attrs) {
  Lines.push_back("  " + Id + " [" + Attrs + "];");
}

void DotWriter::addEdge(const std::string &From, const std::string &To,
                        const std::string &Attrs) {
  std::string Line = "  " + From + " -> " + To;
  if (!Attrs.empty())
    Line += " [" + Attrs + "]";
  Line += ";";
  Lines.push_back(std::move(Line));
}

void DotWriter::write(std::ostream &OS) const {
  OS << "digraph " << GraphName << " {\n";
  OS << "  rankdir=TB;\n";
  for (const std::string &Line : Lines)
    OS << Line << "\n";
  OS << "}\n";
}

std::string DotWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}
