//===- support/Table.cpp - Console table and CSV emission ----------------===//

#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

using namespace scorpio;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I != Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    OS << "|";
    for (size_t I = 0; I != Row.size(); ++I)
      OS << " " << std::left << std::setw(static_cast<int>(Widths[I]))
         << Row[I] << " |";
    OS << "\n";
  };
  auto PrintRule = [&] {
    OS << "+";
    for (size_t W : Widths)
      OS << std::string(W + 2, '-') << "+";
    OS << "\n";
  };

  PrintRule();
  PrintRow(Header);
  PrintRule();
  for (const auto &Row : Rows)
    PrintRow(Row);
  PrintRule();
}

static void printCsvCell(std::ostream &OS, const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos) {
    OS << Cell;
    return;
  }
  OS << '"';
  for (char C : Cell) {
    if (C == '"')
      OS << '"';
    OS << C;
  }
  OS << '"';
}

void Table::printCsv(std::ostream &OS) const {
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I)
        OS << ",";
      printCsvCell(OS, Row[I]);
    }
    OS << "\n";
  };
  PrintRow(Header);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string scorpio::formatDouble(double X, int Digits) {
  std::ostringstream OS;
  OS << std::setprecision(Digits) << X;
  return OS.str();
}

std::string scorpio::formatFixed(double X, int Decimals) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(Decimals) << X;
  return OS.str();
}

std::string scorpio::formatPercent(double X) {
  std::ostringstream OS;
  OS << std::fixed << std::setprecision(1) << (100.0 * X) << "%";
  return OS.str();
}
