//===- support/Diag.h - Structured diagnostics: Status, checks, sink ------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-on structured error handling for the user-facing API surface.
///
/// A significance analysis whose product is an error bound is only
/// credible if its own failure modes are loud and deterministic: an
/// `assert` compiled out under NDEBUG (which CMake's default
/// RelWithDebInfo defines!) silently turns an invalid input into garbage
/// significances.  This header provides the replacement:
///
///  * `Status` / `Expected<T>` — lightweight error values carrying an
///    error code, a message and the source location of the failed check;
///  * `SCORPIO_CHECK` / `SCORPIO_REQUIRE` / `SCORPIO_CHECK_FATAL` —
///    precondition checks that stay live in every build type.  On
///    failure they record a DiagRecord in the global DiagSink and then
///    recover per the process-wide CheckPolicy;
///  * `DiagSink` — a thread-safe collector of structured error records,
///    queryable from tests and exportable as JSON;
///  * `DiagTestHook` — fault injection: tests arm a check site by its
///    message and the next evaluation takes the failure path even on
///    valid inputs, so every recovery path is testable under NDEBUG.
///
/// Policy: checks guard *caller-reachable* preconditions at API
/// boundaries.  Hot-path internal invariants that cannot be violated by
/// caller input (the interval constructor invoked per sweep operation,
/// ChunkedVector indexing, BatchAdjoints lanes, Image::at) legitimately
/// remain `assert`s; see DESIGN.md "Error handling & failure policy".
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SUPPORT_DIAG_H
#define SCORPIO_SUPPORT_DIAG_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace scorpio {
namespace diag {

/// Error codes of the structured diagnostics layer.  Codes classify the
/// *kind* of violation; the record's message names the exact site.
enum class ErrC : uint8_t {
  Ok = 0,
  InvalidArgument, ///< argument outside the documented domain
  DomainError,     ///< mathematical domain violation (NaN bound, negative
                   ///< radius, disjoint intersection)
  SizeMismatch,    ///< paired containers of different lengths
  EmptyInput,      ///< an input that must be non-empty was empty
  OutOfRange,      ///< index or ratio outside its valid range
  InvalidState,    ///< API misuse (no live Analysis, unreleased tasks)
  Internal,        ///< violated internal invariant (likely a scorpio bug)
};

/// Stable mnemonic for \p Code ("invalid_argument", "domain_error", ...).
const char *errName(ErrC Code);

/// Source location of a failed check (pointers into string literals; no
/// ownership).
struct SourceLoc {
  const char *File = "";
  int Line = 0;
};

/// A success-or-error value: ErrC::Ok or a code plus contextual message
/// and the failing check's source location.
class [[nodiscard]] Status {
public:
  /// Default-constructs the Ok status.
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(ErrC Code, std::string Message, SourceLoc Loc = {}) {
    Status S;
    S.Code = Code;
    S.Message = std::move(Message);
    S.Loc = Loc;
    return S;
  }

  bool isOk() const { return Code == ErrC::Ok; }
  explicit operator bool() const { return isOk(); }

  ErrC code() const { return Code; }
  const std::string &message() const { return Message; }
  const SourceLoc &location() const { return Loc; }

  /// "ok" or "<errname>: <message> (<file>:<line>)".
  std::string toString() const;

private:
  ErrC Code = ErrC::Ok;
  std::string Message;
  SourceLoc Loc;
};

/// Holds either a T or the Status explaining why there is none.  The
/// value-free probing counterpart of a checked API: `tryIntersect`
/// returns Expected<Interval> so callers can branch on emptiness without
/// triggering a diagnostic.
template <typename T> class [[nodiscard]] Expected {
public:
  /*implicit*/ Expected(T Value) : Val(std::move(Value)) {}
  /*implicit*/ Expected(Status S) : Err(std::move(S)) {
    // An Ok status cannot vouch for a value that was never produced;
    // normalize so hasValue() stays truthful.
    if (Err.isOk())
      Err = Status::error(ErrC::Internal, "Expected constructed from Ok "
                                          "status without a value");
  }

  bool hasValue() const { return Val.has_value(); }
  explicit operator bool() const { return hasValue(); }

  const T &value() const & { return *Val; }
  T &value() & { return *Val; }

  /// The value, or \p Default when this holds an error.
  T valueOr(T Default) const {
    return Val ? *Val : std::move(Default);
  }

  /// Ok when a value is present.
  const Status &status() const { return Err; }

private:
  std::optional<T> Val;
  Status Err;
};

/// One collected failure: everything a test (or an exported report)
/// needs to identify the violation.
struct DiagRecord {
  ErrC Code = ErrC::Ok;
  std::string Message;
  std::string File;
  int Line = 0;
  /// Process-wide monotone sequence number (collection order).
  uint64_t Seq = 0;
};

/// Thread-safe collector of DiagRecords.  One process-wide instance;
/// checks report into it and tests query/clear it.
class DiagSink {
public:
  static DiagSink &global();

  /// Appends a record (thread-safe); returns its sequence number.
  uint64_t report(ErrC Code, const char *File, int Line,
                  std::string Message);

  /// Number of collected records.
  size_t count() const;
  /// Number of collected records carrying \p Code.
  size_t countOf(ErrC Code) const;
  /// Snapshot of all records in collection order.
  std::vector<DiagRecord> records() const;
  /// The most recent record (Ok/empty record when none).
  DiagRecord last() const;
  /// Drops all records (sequence numbers keep increasing).
  void clear();

  /// Exports the collected records as a JSON array of objects with
  /// "code", "name", "message", "file", "line", "seq" fields.
  void writeJson(std::ostream &OS) const;

private:
  DiagSink() = default;
  struct Impl;
  Impl &impl() const;
};

/// What a failed check does after recording its DiagRecord.
enum class CheckPolicy : uint8_t {
  /// Record silently and let the call site recover (return its fallback
  /// or Status).  The default: production serving must degrade, not die.
  ReturnStatus,
  /// Record, print the record to stderr, then recover as above.
  LogAndRecover,
  /// Record, print to stderr, std::abort().  Deterministic hard stop for
  /// debugging and for deployments that prefer crash over degradation.
  Trap,
};

CheckPolicy checkPolicy();
void setCheckPolicy(CheckPolicy Policy);

/// Fault injection for tests: arm a check site by (substring of) its
/// message and the next \p Count evaluations of that check fail even
/// when the guarded condition holds, driving the recovery path and the
/// structured error surface deterministically — including under NDEBUG,
/// where the legacy asserts would have been compiled out.
class DiagTestHook {
public:
  /// Arms the hook: checks whose message contains \p SitePattern fail
  /// their next \p Count evaluations.
  static void arm(std::string SitePattern, int Count = 1);
  /// Disarms any pending fault.
  static void disarm();
  /// Cheap pre-test used by the check macros (relaxed atomic load).
  static bool armed();
  /// True when a matching fault is armed; consumes one count.  Called by
  /// the macros only after armed() returned true.
  static bool shouldFail(const char *Site);
};

/// Records the failure, applies the active CheckPolicy (stderr print /
/// abort), and returns the corresponding error Status.  The workhorse
/// behind the macros; callable directly from code that needs bespoke
/// recovery.
Status reportFailure(ErrC Code, const char *File, int Line,
                     const char *Message);

/// Like reportFailure but always aborts after recording: for violations
/// with no representable recovery (e.g. a reference-returning accessor
/// with no object to refer to).
[[noreturn]] void reportFatal(ErrC Code, const char *File, int Line,
                              const char *Message);

} // namespace diag
} // namespace scorpio

/// Checks a caller-facing precondition; live in every build type.
/// Evaluates to true when the check passes.  On failure (condition false,
/// or a DiagTestHook fault armed for \p Msg) records a structured
/// DiagRecord, applies the CheckPolicy, and evaluates to false so the
/// call site can recover:
///
/// \code
///   if (!SCORPIO_CHECK(Ratio <= 1.0, diag::ErrC::OutOfRange,
///                      "taskwait ratio above 1"))
///     Ratio = 1.0; // documented recovery
/// \endcode
#define SCORPIO_CHECK(Cond, Code, Msg)                                         \
  (((Cond) && !(::scorpio::diag::DiagTestHook::armed() &&                      \
                ::scorpio::diag::DiagTestHook::shouldFail(Msg)))               \
       ? true                                                                  \
       : ((void)::scorpio::diag::reportFailure((Code), __FILE__, __LINE__,     \
                                               (Msg)),                         \
          false))

/// Statement form of SCORPIO_CHECK for the common recover-by-returning
/// case: on failure, returns \p __VA_ARGS__ (which may be empty, for
/// void functions) from the enclosing function.
///
/// \code
///   SCORPIO_REQUIRE(Rad >= 0.0, diag::ErrC::DomainError,
///                   "negative radius", Interval::entire());
/// \endcode
#define SCORPIO_REQUIRE(Cond, Code, Msg, ...)                                  \
  do {                                                                         \
    if (!SCORPIO_CHECK((Cond), (Code), (Msg)))                                 \
      return __VA_ARGS__;                                                      \
  } while (0)

/// Check with no representable recovery: records the diagnostic and
/// aborts regardless of policy.  Reserve for sites where continuing
/// would dereference nothing (e.g. Analysis::current() with none live).
#define SCORPIO_CHECK_FATAL(Cond, Code, Msg)                                   \
  do {                                                                         \
    if (!((Cond) && !(::scorpio::diag::DiagTestHook::armed() &&                \
                      ::scorpio::diag::DiagTestHook::shouldFail(Msg))))        \
      ::scorpio::diag::reportFatal((Code), __FILE__, __LINE__, (Msg));         \
  } while (0)

#endif // SCORPIO_SUPPORT_DIAG_H
