//===- support/Random.cpp - Deterministic RNG implementation -------------===//

#include "support/Random.h"

#include <cmath>

using namespace scorpio;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Random::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
  HasSpareGaussian = false;
  SpareGaussian = 0.0;
}

uint64_t Random::next() {
  const uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Random::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Random::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Random::below(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = -Bound % Bound;
  for (;;) {
    const uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Random::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  const uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(below(Span));
}

double Random::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  for (;;) {
    const double U = uniform(-1.0, 1.0);
    const double V = uniform(-1.0, 1.0);
    const double S = U * U + V * V;
    if (S <= 0.0 || S >= 1.0)
      continue;
    const double Scale = std::sqrt(-2.0 * std::log(S) / S);
    SpareGaussian = V * Scale;
    HasSpareGaussian = true;
    return U * Scale;
  }
}
