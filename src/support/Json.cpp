//===- support/Json.cpp - Minimal JSON emission ---------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace scorpio;

JsonWriter::~JsonWriter() {
  assert(Stack.empty() && "unbalanced JSON containers at destruction");
}

void JsonWriter::beforeValue() {
  if (Stack.empty())
    return;
  if (Stack.back() == Frame::Object) {
    assert(PendingKey && "object members need a key() first");
    PendingKey = false;
    return;
  }
  if (NeedComma.back())
    OS << ",";
  NeedComma.back() = true;
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  OS << "{";
  Stack.push_back(Frame::Object);
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == Frame::Object &&
         "endObject without beginObject");
  assert(!PendingKey && "dangling key");
  OS << "}";
  Stack.pop_back();
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  OS << "[";
  Stack.push_back(Frame::Array);
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == Frame::Array &&
         "endArray without beginArray");
  OS << "]";
  Stack.pop_back();
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &Name) {
  assert(!Stack.empty() && Stack.back() == Frame::Object &&
         "key() outside an object");
  assert(!PendingKey && "two keys in a row");
  if (NeedComma.back())
    OS << ",";
  NeedComma.back() = true;
  OS << "\"" << escape(Name) << "\":";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &S) {
  beforeValue();
  OS << "\"" << escape(S) << "\"";
  return *this;
}

JsonWriter &JsonWriter::value(double X) {
  beforeValue();
  if (std::isnan(X)) {
    OS << "null"; // JSON has no NaN
    return *this;
  }
  if (std::isinf(X)) {
    OS << (X > 0 ? "1e308" : "-1e308"); // representable stand-in
    return *this;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", X);
  OS << Buf;
  return *this;
}

JsonWriter &JsonWriter::value(long long X) {
  beforeValue();
  OS << X;
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  OS << (B ? "true" : "false");
  return *this;
}

JsonWriter &JsonWriter::null() {
  beforeValue();
  OS << "null";
  return *this;
}

std::string JsonWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}
