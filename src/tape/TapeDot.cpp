//===- tape/TapeDot.cpp - Annotated DynDFG export -------------------------===//

#include "tape/TapeDot.h"

#include "support/Dot.h"

#include <iomanip>
#include <sstream>

using namespace scorpio;

static std::string fmtInterval(const Interval &X, int Digits) {
  std::ostringstream OS;
  OS << std::setprecision(Digits) << "[" << X.lower() << ", "
     << X.upper() << "]";
  return OS.str();
}

void scorpio::writeTapeDot(const Tape &T, std::ostream &OS,
                           const std::map<NodeId, std::string> &Labels,
                           const TapeDotOptions &Options) {
  DotWriter W("DynDFGAnnotated");
  for (size_t I = 0; I != T.size(); ++I) {
    const TapeNode &N = T.node(static_cast<NodeId>(I));
    std::ostringstream Label;
    Label << "u" << I << ": " << opKindName(N.Kind);
    if (auto It = Labels.find(static_cast<NodeId>(I)); It != Labels.end())
      Label << "\\n" << It->second;
    if (Options.ShowValues)
      Label << "\\n" << fmtInterval(N.Value, Options.Digits);
    if (Options.ShowAdjoints)
      Label << "\\nadj " << fmtInterval(N.Adjoint, Options.Digits);
    std::string Attrs =
        "label=\"" + DotWriter::escape(Label.str()) + "\", shape=box";
    if (N.Kind == OpKind::Input)
      Attrs += ", style=filled, fillcolor=lightgrey";
    W.addNode("u" + std::to_string(I), Attrs);
  }
  for (size_t I = 0; I != T.size(); ++I) {
    const TapeNode &N = T.node(static_cast<NodeId>(I));
    for (uint8_t A = 0; A != N.NumArgs; ++A) {
      std::string Attrs;
      if (Options.ShowPartials)
        Attrs = "label=\"" +
                DotWriter::escape(
                    fmtInterval(N.Partials[A], Options.Digits)) +
                "\"";
      W.addEdge("u" + std::to_string(N.Args[A]),
                "u" + std::to_string(I), Attrs);
    }
  }
  W.write(OS);
}
