//===- tape/TapeDot.cpp - Annotated DynDFG export -------------------------===//

#include "tape/TapeDot.h"

#include "support/Dot.h"

#include <iomanip>
#include <sstream>

using namespace scorpio;

static std::string fmtInterval(const Interval &X, int Digits) {
  std::ostringstream OS;
  OS << std::setprecision(Digits) << "[" << X.lower() << ", "
     << X.upper() << "]";
  return OS.str();
}

void scorpio::writeTapeDot(const Tape &T, std::ostream &OS,
                           const std::map<NodeId, std::string> &Labels,
                           const TapeDotOptions &Options) {
  DotWriter W("DynDFGAnnotated");
  for (size_t I = 0; I != T.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    std::ostringstream Label;
    Label << "u" << I << ": " << opKindName(T.kind(Id));
    if (auto It = Labels.find(Id); It != Labels.end())
      Label << "\\n" << It->second;
    if (Options.ShowValues)
      Label << "\\n" << fmtInterval(T.value(Id), Options.Digits);
    if (Options.ShowAdjoints)
      Label << "\\nadj " << fmtInterval(T.adjoint(Id), Options.Digits);
    std::string Attrs =
        "label=\"" + DotWriter::escape(Label.str()) + "\", shape=box";
    if (auto Fill = Options.FillColors.find(Id);
        Fill != Options.FillColors.end())
      Attrs += ", style=filled, fillcolor=" + Fill->second;
    else if (T.kind(Id) == OpKind::Input)
      Attrs += ", style=filled, fillcolor=lightgrey";
    W.addNode("u" + std::to_string(I), Attrs);
  }
  for (size_t I = 0; I != T.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    for (unsigned A = 0, N = T.numArgs(Id); A != N; ++A) {
      std::string Attrs;
      if (Options.ShowPartials)
        Attrs = "label=\"" +
                DotWriter::escape(
                    fmtInterval(T.partial(Id, A), Options.Digits)) +
                "\"";
      W.addEdge("u" + std::to_string(T.arg(Id, A)),
                "u" + std::to_string(I), Attrs);
    }
  }
  W.write(OS);
}
