//===- tape/TapeIO.cpp - Versioned .stap tape serialization ---------------===//

#include "tape/TapeIO.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <type_traits>

using namespace scorpio;
using namespace scorpio::diag;

namespace {

constexpr char Magic[4] = {'S', 'T', 'A', 'P'};

constexpr uint32_t fourCC(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

constexpr uint32_t TagOps = fourCC('O', 'P', 'S', ' ');
constexpr uint32_t TagVals = fourCC('V', 'A', 'L', 'S');
constexpr uint32_t TagEdge = fourCC('E', 'D', 'G', 'E');
constexpr uint32_t TagInpt = fourCC('I', 'N', 'P', 'T');
constexpr uint32_t TagOutp = fourCC('O', 'U', 'T', 'P');
constexpr uint32_t TagMeta = fourCC('M', 'E', 'T', 'A');
constexpr uint32_t TagLabl = fourCC('L', 'A', 'B', 'L');
constexpr uint32_t TagVars = fourCC('V', 'A', 'R', 'S');
constexpr uint32_t TagDivg = fourCC('D', 'I', 'V', 'G');
constexpr uint32_t TagSig = fourCC('S', 'I', 'G', ' ');

/// Per-node strides of the fixed-stride sections and the per-argument
/// stride of EDGE; the loader pins attacker-controlled counts against
/// these before allocating.
constexpr uint64_t OpsStride = 5;   // kind u8 + aux exponent i32
constexpr uint64_t ValsStride = 16; // lower/upper doubles
constexpr uint64_t EdgeArgStride = 20; // NodeId i32 + partial lo/hi doubles

std::string tagName(uint32_t Tag) {
  std::string S(4, ' ');
  // fourCC packs the first character into the low byte; emit LSB-first
  // so the name prints identically on any host.
  for (int I = 0; I != 4; ++I)
    S[static_cast<size_t>(I)] =
        static_cast<char>((Tag >> (8 * I)) & 0xFF);
  while (!S.empty() && S.back() == ' ')
    S.pop_back();
  return S;
}

uint64_t fnv1a64(const char *Data, size_t Size, uint64_t Hash) {
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= static_cast<uint8_t>(Data[I]);
    Hash *= 1099511628211ULL;
  }
  return Hash;
}
constexpr uint64_t Fnv1aBasis = 14695981039346656037ULL;

//===----------------------------------------------------------------------===//
// Endianness
//
// The canonical on-disk byte order is little-endian: the writer swaps
// every multi-byte field on big-endian hosts (a no-op on the little-
// endian machines every existing .stap came from), and the reader
// converts file order to host order.  Codecs operate on the canonical
// raw payloads, so compressed sections are host-independent too.
//===----------------------------------------------------------------------===//

constexpr bool HostIsLittleEndian =
    std::endian::native == std::endian::little;

/// std::byteswap is C++23; this is the classic byte-reversal for any
/// trivially copyable scalar (doubles included).
template <typename T> T byteswapped(T V) {
  static_assert(std::is_trivially_copyable_v<T>);
  char B[sizeof(T)];
  std::memcpy(B, &V, sizeof(T));
  for (size_t I = 0; I != sizeof(T) / 2; ++I)
    std::swap(B[I], B[sizeof(T) - 1 - I]);
  std::memcpy(&V, B, sizeof(T));
  return V;
}

/// Host value -> canonical little-endian file value (identity on LE
/// hosts).
template <typename T> T toLittleEndian(T V) {
  if constexpr (sizeof(T) > 1)
    if (!HostIsLittleEndian)
      return byteswapped(V);
  return V;
}

/// Appends POD values to a byte buffer, multi-byte scalars in canonical
/// little-endian order (byte arrays such as the magic pass through
/// verbatim).
class ByteWriter {
public:
  template <typename T> void put(const T &V) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t At = Buf.size();
    Buf.resize(At + sizeof(T));
    if constexpr (std::is_arithmetic_v<T>) {
      const T C = toLittleEndian(V);
      std::memcpy(Buf.data() + At, &C, sizeof(T));
    } else {
      std::memcpy(Buf.data() + At, &V, sizeof(T));
    }
  }
  void putString(const std::string &S) {
    put(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }
  const std::string &bytes() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked POD reader over one section's payload.  Any read past
/// the end latches the failure flag and yields zeroes, so parsing code
/// can run straight-line and test ok() once.  \p FileBigEndian converts
/// a legacy big-endian file's multi-byte fields to host order (the
/// default reads canonical little-endian files on any host).
class Cursor {
public:
  Cursor(const char *Data, size_t Size, bool FileBigEndian = false)
      : Data(Data), Size(Size), FileBigEndian(FileBigEndian) {}

  template <typename T> T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T V{};
    if (Pos + sizeof(T) > Size || !Ok) {
      Ok = false;
      return V;
    }
    std::memcpy(&V, Data + Pos, sizeof(T));
    Pos += sizeof(T);
    if constexpr (std::is_arithmetic_v<T> && sizeof(T) > 1)
      if (FileBigEndian == HostIsLittleEndian)
        V = byteswapped(V);
    return V;
  }
  bool getString(std::string &Out) {
    const uint32_t Len = get<uint32_t>();
    if (!Ok || Pos + Len > Size) {
      Ok = false;
      return false;
    }
    Out.assign(Data + Pos, Len);
    Pos += Len;
    return true;
  }
  bool ok() const { return Ok; }
  bool atEnd() const { return Ok && Pos == Size; }

private:
  const char *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
  bool FileBigEndian = false;
};

//===----------------------------------------------------------------------===//
// v2 section codecs
//===----------------------------------------------------------------------===//

/// LEB128-style base-128 varint.
void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7F) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

bool getVarint(const char *Data, size_t Size, size_t &Pos, uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64 && Pos < Size; Shift += 7) {
    const uint8_t B = static_cast<uint8_t>(Data[Pos++]);
    V |= static_cast<uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return true;
  }
  return false;
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}
int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

/// RLE token stream: a control byte C < 0x80 copies the next C+1
/// literal bytes; C >= 0x80 repeats the next byte (C - 0x80) + 3 times
/// (runs of 3..130).  Worst-case expansion of the *decoder* is 65x (a
/// 2-byte repeat token yields at most 130 bytes), which bounds the
/// allocation a hostile stored size can demand.
constexpr uint64_t RleMaxExpansion = 65;

std::string rleCompress(const std::string &Raw) {
  std::string Out;
  const size_t N = Raw.size();
  size_t I = 0;
  while (I < N) {
    size_t Run = 1;
    while (I + Run < N && Raw[I + Run] == Raw[I] && Run < 130)
      ++Run;
    if (Run >= 3) {
      Out.push_back(static_cast<char>(0x80 + (Run - 3)));
      Out.push_back(Raw[I]);
      I += Run;
      continue;
    }
    const size_t Start = I;
    size_t Lit = 0;
    while (I < N && Lit < 128) {
      if (I + 2 < N && Raw[I + 1] == Raw[I] && Raw[I + 2] == Raw[I])
        break;
      ++I;
      ++Lit;
    }
    Out.push_back(static_cast<char>(Lit - 1));
    Out.append(Raw, Start, Lit);
  }
  return Out;
}

bool rleDecompress(const char *Data, size_t Size, uint64_t RawSize,
                   std::string &Out) {
  Out.clear();
  Out.reserve(RawSize);
  size_t I = 0;
  while (I < Size) {
    const uint8_t C = static_cast<uint8_t>(Data[I++]);
    if (C < 0x80) {
      const size_t Lit = static_cast<size_t>(C) + 1;
      if (I + Lit > Size || Out.size() + Lit > RawSize)
        return false;
      Out.append(Data + I, Lit);
      I += Lit;
    } else {
      if (I >= Size)
        return false;
      const size_t Rep = static_cast<size_t>(C - 0x80) + 3;
      if (Out.size() + Rep > RawSize)
        return false;
      Out.append(Rep, Data[I++]);
    }
  }
  return Out.size() == RawSize;
}

/// OPS varint layout: [NumNodes kind bytes][NumNodes zigzag varints of
/// the aux exponent].  Grouping the kinds lets the RLE stage exploit
/// op-kind repetition that the interleaved raw stride hides.
std::string varintEncodeOps(const std::string &Raw, size_t NumNodes) {
  std::string Out;
  Out.reserve(NumNodes * 2);
  for (size_t I = 0; I != NumNodes; ++I)
    Out.push_back(Raw[I * OpsStride]);
  for (size_t I = 0; I != NumNodes; ++I) {
    // The raw payload holds canonical little-endian bytes; convert to a
    // host value so the zigzag deltas are host-independent.
    int32_t Aux = 0;
    std::memcpy(&Aux, Raw.data() + I * OpsStride + 1, 4);
    Aux = toLittleEndian(Aux);
    putVarint(Out, zigzag(Aux));
  }
  return Out;
}

bool varintDecodeOps(const char *Data, size_t Size, uint64_t NumNodes,
                     std::string &Out) {
  // >= 1 kind byte + >= 1 varint byte per node: rejecting here pins the
  // 5*NumNodes allocation below against the real encoded size.
  if (Size < 2 * NumNodes)
    return false;
  Out.assign(NumNodes * OpsStride, '\0');
  size_t Pos = NumNodes;
  for (size_t I = 0; I != NumNodes; ++I) {
    Out[I * OpsStride] = Data[I];
    uint64_t Z = 0;
    if (!getVarint(Data, Size, Pos, Z))
      return false;
    const int64_t V = unzigzag(Z);
    if (V < std::numeric_limits<int32_t>::min() ||
        V > std::numeric_limits<int32_t>::max())
      return false;
    // toLittleEndian is its own inverse: host value -> canonical bytes.
    const int32_t Aux = toLittleEndian(static_cast<int32_t>(V));
    std::memcpy(Out.data() + I * OpsStride + 1, &Aux, 4);
  }
  return Pos == Size;
}

/// EDGE varint layout: [NumNodes arg-count bytes][one zigzag varint per
/// argument: consumer index minus argument id (small positive numbers
/// for the back-references every well-formed tape consists of)][raw
/// partial-bound doubles, 16 bytes per argument].
std::string varintEncodeEdge(const std::string &Raw, size_t NumNodes) {
  std::string Counts, Deltas, Partials;
  Counts.reserve(NumNodes);
  size_t Pos = 0;
  for (size_t I = 0; I != NumNodes; ++I) {
    const uint8_t NumArgs = static_cast<uint8_t>(Raw[Pos++]);
    Counts.push_back(static_cast<char>(NumArgs));
    const unsigned Stored = NumArgs < 2 ? NumArgs : 2;
    for (unsigned A = 0; A != Stored; ++A) {
      int32_t Arg = 0;
      std::memcpy(&Arg, Raw.data() + Pos, 4);
      Arg = toLittleEndian(Arg); // canonical bytes -> host value
      Pos += 4;
      putVarint(Deltas, zigzag(static_cast<int64_t>(I) - Arg));
      Partials.append(Raw, Pos, 16);
      Pos += 16;
    }
  }
  return Counts + Deltas + Partials;
}

bool varintDecodeEdge(const char *Data, size_t Size, uint64_t NumNodes,
                      std::string &Out) {
  if (Size < NumNodes) // one arg-count byte per node at minimum
    return false;
  uint64_t TotalArgs = 0;
  for (size_t I = 0; I != NumNodes; ++I) {
    const uint8_t C = static_cast<uint8_t>(Data[I]);
    TotalArgs += C < 2 ? C : 2;
  }
  std::vector<int32_t> Args;
  Args.reserve(TotalArgs);
  size_t Pos = NumNodes;
  for (size_t I = 0; I != NumNodes; ++I) {
    const uint8_t C = static_cast<uint8_t>(Data[I]);
    const unsigned Stored = C < 2 ? C : 2;
    for (unsigned A = 0; A != Stored; ++A) {
      uint64_t Z = 0;
      if (!getVarint(Data, Size, Pos, Z))
        return false;
      const int64_t Arg = static_cast<int64_t>(I) - unzigzag(Z);
      if (Arg < std::numeric_limits<int32_t>::min() ||
          Arg > std::numeric_limits<int32_t>::max())
        return false;
      Args.push_back(static_cast<int32_t>(Arg));
    }
  }
  if (Size - Pos != TotalArgs * 16)
    return false;
  Out.clear();
  Out.reserve(NumNodes + TotalArgs * EdgeArgStride);
  size_t AI = 0;
  for (size_t I = 0; I != NumNodes; ++I) {
    const uint8_t C = static_cast<uint8_t>(Data[I]);
    Out.push_back(static_cast<char>(C));
    const unsigned Stored = C < 2 ? C : 2;
    for (unsigned A = 0; A != Stored; ++A, ++AI) {
      const int32_t Arg = toLittleEndian(Args[AI]); // host -> canonical
      Out.append(reinterpret_cast<const char *>(&Arg), 4);
      Out.append(Data + Pos + AI * 16, 16);
    }
  }
  return true;
}

struct SectionOut {
  uint32_t Tag;
  uint32_t Flags = 0;
  std::string Payload;
};

/// Stores \p S in whichever admissible encoding is smallest.  Candidate
/// order (raw, varint, rle, varint+rle) breaks ties deterministically
/// toward the simpler encoding; a section only gains a flag when that
/// strictly shrinks it.
void compressSection(SectionOut &S, size_t NumNodes) {
  const bool VarintOk = S.Tag == TagOps || S.Tag == TagEdge;
  std::string Varint;
  if (VarintOk)
    Varint = S.Tag == TagOps ? varintEncodeOps(S.Payload, NumNodes)
                             : varintEncodeEdge(S.Payload, NumNodes);
  const auto Rle = [](const std::string &In) {
    std::string Stored;
    const uint64_t RawSize = toLittleEndian<uint64_t>(In.size());
    Stored.append(reinterpret_cast<const char *>(&RawSize), 8);
    Stored += rleCompress(In);
    return Stored;
  };
  std::string Best = S.Payload;
  uint32_t BestFlags = 0;
  const auto Consider = [&](uint32_t Flags, std::string Cand) {
    if (Cand.size() < Best.size()) {
      Best = std::move(Cand);
      BestFlags = Flags;
    }
  };
  if (VarintOk)
    Consider(StapSectionVarint, Varint);
  Consider(StapSectionRle, Rle(S.Payload));
  if (VarintOk)
    Consider(StapSectionVarint | StapSectionRle, Rle(Varint));
  S.Payload = std::move(Best);
  S.Flags = BestFlags;
}

/// Reverses the stored-form encoding of one section into its raw (v1
/// wire layout) payload.  All size checks run before the corresponding
/// allocation; on any codec violation the empty Expected carries the
/// reason.
Status stapError(std::string Message) {
  return Status::error(ErrC::InvalidArgument, "stap: " + std::move(Message));
}

Expected<std::string> decodeSectionPayload(uint32_t Tag, uint32_t Flags,
                                           const char *Data, size_t Size,
                                           uint64_t NumNodes) {
  std::string Stage(Data, Size);
  if (Flags & StapSectionRle) {
    if (Size < 8)
      return stapError("section '" + tagName(Tag) +
                       "': RLE payload shorter than its size header");
    uint64_t RawSize = 0;
    std::memcpy(&RawSize, Data, 8);
    RawSize = toLittleEndian(RawSize); // canonical bytes -> host value
    const uint64_t TokenBytes = Size - 8;
    // The decoder can emit at most RleMaxExpansion bytes per stored
    // byte; a stored size above that bound is a decompression bomb.
    if (RawSize > TokenBytes * RleMaxExpansion)
      return stapError("section '" + tagName(Tag) +
                       "': RLE size exceeds the codec expansion bound");
    std::string Out;
    if (!rleDecompress(Data + 8, TokenBytes, RawSize, Out))
      return stapError("section '" + tagName(Tag) +
                       "': malformed RLE token stream");
    Stage = std::move(Out);
  }
  if (Flags & StapSectionVarint) {
    std::string Out;
    const bool Ok =
        Tag == TagOps
            ? varintDecodeOps(Stage.data(), Stage.size(), NumNodes, Out)
            : varintDecodeEdge(Stage.data(), Stage.size(), NumNodes, Out);
    if (!Ok)
      return stapError("section '" + tagName(Tag) +
                       "': malformed varint encoding");
    Stage = std::move(Out);
  }
  return Expected<std::string>(std::move(Stage));
}

//===----------------------------------------------------------------------===//
// Raw payload builders
//===----------------------------------------------------------------------===//

std::string opsPayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(static_cast<uint8_t>(N.Kind));
    W.put(N.AuxInt);
  }
  return W.bytes();
}

std::string valsPayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(N.ValueLo);
    W.put(N.ValueHi);
  }
  return W.bytes();
}

std::string edgePayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(N.NumArgs);
    for (unsigned A = 0; A != N.NumArgs && A != 2; ++A) {
      W.put(N.Args[A]);
      W.put(N.PartialLo[A]);
      W.put(N.PartialHi[A]);
    }
  }
  return W.bytes();
}

std::string idListPayload(const std::vector<NodeId> &Ids) {
  ByteWriter W;
  W.put(static_cast<uint64_t>(Ids.size()));
  for (NodeId Id : Ids)
    W.put(Id);
  return W.bytes();
}

void putNamedIds(ByteWriter &W,
                 const std::vector<std::pair<NodeId, std::string>> &List) {
  W.put(static_cast<uint64_t>(List.size()));
  for (const auto &[Id, Name] : List) {
    W.put(Id);
    W.putString(Name);
  }
}

std::string metaPayload(const TapeMeta &Meta) {
  ByteWriter W;
  W.put(stapSchemaHash()); // always the writing build's hash
  W.put(Meta.ShardIndex);
  W.putString(Meta.ShardName);
  W.put(static_cast<uint8_t>(Meta.HasOptions ? 1 : 0));
  W.put(Meta.OutputMode);
  W.put(Meta.Metric);
  W.put(Meta.BatchWidth);
  W.put(static_cast<uint8_t>(Meta.Simplify ? 1 : 0));
  W.put(static_cast<uint8_t>(Meta.BuildGraph ? 1 : 0));
  W.put(Meta.VerifyTape); // the VerifyLevel wire byte, not a bool
  static_assert(sizeof(Meta.VerifyTape) == 1,
                "META layout fixes VerifyTape at one byte");
  W.put(Meta.Delta);
  W.put(Meta.SignificanceCap);
  return W.bytes();
}

Status writeSections(std::ostream &OS, size_t NumNodes,
                     std::vector<SectionOut> &Sections,
                     const StapWriteOptions &Options) {
  ByteWriter Header;
  Header.put(Magic);
  Header.put(Options.Version);
  Header.put(static_cast<uint64_t>(NumNodes));
  Header.put(static_cast<uint64_t>(Sections.size()));
  const size_t ChecksumAt = Header.bytes().size();
  Header.put(static_cast<uint64_t>(0)); // patched below

  // Section table: tag, flags (v1: reserved zero), absolute offset,
  // stored size.  Layout is strictly sequential — the reader enforces
  // it, so the writer has no freedom here.
  uint64_t Offset = Header.bytes().size() + Sections.size() * 24;
  ByteWriter Table;
  for (const SectionOut &S : Sections) {
    Table.put(S.Tag);
    Table.put(S.Flags);
    Table.put(Offset);
    Table.put(static_cast<uint64_t>(S.Payload.size()));
    Offset += S.Payload.size();
  }

  std::string File = Header.bytes();
  File += Table.bytes();
  for (const SectionOut &S : Sections)
    File += S.Payload;

  // v1 hashes the concatenated payloads only; v2 hashes the whole file
  // with the checksum field taken as zero, so header and section-table
  // bytes have no blind spot the payload hash cannot see.
  uint64_t Checksum = Fnv1aBasis;
  if (Options.Version >= 2)
    Checksum = fnv1a64(File.data(), File.size(), Fnv1aBasis);
  else
    for (const SectionOut &S : Sections)
      Checksum = fnv1a64(S.Payload.data(), S.Payload.size(), Checksum);
  Checksum = toLittleEndian(Checksum); // stored canonically like every field
  std::memcpy(File.data() + ChecksumAt, &Checksum, 8);

  OS.write(File.data(), static_cast<std::streamsize>(File.size()));
  OS.flush();
  SCORPIO_REQUIRE(OS.good(), ErrC::InvalidState,
                  "writeStap: output stream write failed",
                  Status::error(ErrC::InvalidState,
                                "writeStap: output stream write failed"));
  return Status::ok();
}

} // namespace

uint64_t scorpio::stapSchemaHash() {
  const std::string Schema =
      "stap|ops:" + std::to_string(OpsStride) +
      "|vals:" + std::to_string(ValsStride) +
      "|edge:1+" + std::to_string(EdgeArgStride) +
      "*arg|id:i32|opkinds:" + std::to_string(NumOpKinds);
  return fnv1a64(Schema.data(), Schema.size(), Fnv1aBasis);
}

Status scorpio::writeStap(std::ostream &OS, const verify::RawTape &Raw,
                          const TapeRegistration &Reg,
                          std::span<const double> Significance,
                          std::span<const std::string> Divergences,
                          const StapWriteOptions &Options,
                          const TapeMeta *Meta) {
  if (!Significance.empty() && Significance.size() != Raw.Nodes.size())
    return stapError("significance vector size does not match node count");
  if (Options.Version < StapOldestReadableVersion ||
      Options.Version > StapVersion)
    return stapError("cannot write format version " +
                     std::to_string(Options.Version));
  if (Options.Version < 2 && (Options.Compress || Meta))
    return stapError("compression and META require format version 2");

  std::vector<SectionOut> Sections;
  Sections.push_back({TagOps, 0, opsPayload(Raw)});
  Sections.push_back({TagVals, 0, valsPayload(Raw)});
  Sections.push_back({TagEdge, 0, edgePayload(Raw)});
  Sections.push_back({TagInpt, 0, idListPayload(Raw.Inputs)});
  Sections.push_back({TagOutp, 0, idListPayload(Raw.Outputs)});
  if (Meta)
    Sections.push_back({TagMeta, 0, metaPayload(*Meta)});
  if (!Reg.Labels.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Reg.Labels.size()));
    for (const auto &[Id, Name] : Reg.Labels) {
      W.put(Id);
      W.putString(Name);
    }
    Sections.push_back({TagLabl, 0, W.bytes()});
  }
  if (!Reg.InputVars.empty() || !Reg.IntermediateVars.empty() ||
      !Reg.OutputVars.empty()) {
    ByteWriter W;
    putNamedIds(W, Reg.InputVars);
    putNamedIds(W, Reg.IntermediateVars);
    putNamedIds(W, Reg.OutputVars);
    Sections.push_back({TagVars, 0, W.bytes()});
  }
  if (!Divergences.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Divergences.size()));
    for (const std::string &D : Divergences)
      W.putString(D);
    Sections.push_back({TagDivg, 0, W.bytes()});
  }
  if (!Significance.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Significance.size()));
    for (double S : Significance)
      W.put(S);
    Sections.push_back({TagSig, 0, W.bytes()});
  }
  if (Options.Compress)
    for (SectionOut &S : Sections)
      compressSection(S, Raw.Nodes.size());
  return writeSections(OS, Raw.Nodes.size(), Sections, Options);
}

Status scorpio::writeStap(std::ostream &OS, const Tape &T,
                          const TapeRegistration &Reg,
                          std::span<const double> Significance,
                          const StapWriteOptions &Options,
                          const TapeMeta *Meta) {
  const verify::RawTape Raw = verify::extractRaw(T, Reg.Outputs);
  return writeStap(OS, Raw, Reg, Significance, T.divergences(), Options,
                   Meta);
}

Status scorpio::saveStap(const std::string &Path, const Tape &T,
                         const TapeRegistration &Reg,
                         std::span<const double> Significance,
                         const StapWriteOptions &Options,
                         const TapeMeta *Meta) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  if (!OS)
    return stapError("cannot open '" + Path + "' for writing");
  if (Status S = writeStap(OS, T, Reg, Significance, Options, Meta); !S)
    return S;
  // writeStap flushed; close() surfaces any failure the OS deferred
  // (disk full, quota, I/O error) instead of losing it in the
  // destructor — a .stap that saveStap blessed must be complete.
  OS.close();
  if (OS.fail())
    return stapError("write to '" + Path +
                     "' failed on flush/close (disk full?)");
  return Status::ok();
}

Expected<LoadedTape> scorpio::readStap(std::istream &IS) {
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  const std::string File = Buf.str();

  // Header.
  const size_t HeaderSize = 4 + 4 + 8 + 8 + 8;
  if (File.size() < 4 || std::memcmp(File.data(), Magic, 4) != 0)
    return stapError("not a .stap file (bad magic)");
  if (File.size() < HeaderSize)
    return stapError("truncated header");
  // Endianness detection: the canonical byte order is little-endian, but
  // a version field that only parses byte-swapped marks a file from a
  // legacy native-order writer on a big-endian machine (the magic is a
  // byte string and matches either way).  Version values are tiny, so
  // the two interpretations can never both be readable.
  const auto FieldVersion = [&](bool BigEndian) {
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(File[4 + I]))
           << (BigEndian ? 24 - 8 * I : 8 * I);
    return V;
  };
  const auto Readable = [](uint32_t V) {
    return V >= StapOldestReadableVersion && V <= StapVersion;
  };
  const bool FileBigEndian =
      !Readable(FieldVersion(false)) && Readable(FieldVersion(true));
  Cursor H(File.data() + 4, HeaderSize - 4, FileBigEndian);
  const uint32_t Version = H.get<uint32_t>();
  if (Version < StapOldestReadableVersion || Version > StapVersion)
    return stapError("unsupported format version " + std::to_string(Version));
  const uint64_t NumNodes = H.get<uint64_t>();
  const uint64_t NumSections = H.get<uint64_t>();
  const uint64_t Checksum = H.get<uint64_t>();
  // A node or section count near 2^64 would overflow the size math
  // below; nothing legitimate comes close.
  if (NumNodes > (uint64_t{1} << 32) || NumSections > 1024)
    return stapError("implausible node or section count");

  // Section table.
  if (File.size() < HeaderSize + NumSections * 24)
    return stapError("truncated section table");
  struct Section {
    uint32_t Tag;
    uint32_t Flags;
    uint64_t Offset;
    uint64_t Size;
  };
  std::vector<Section> Sections;
  Cursor TableCur(File.data() + HeaderSize, NumSections * 24,
                  FileBigEndian);
  // Layout strictness (both versions): payloads sit contiguously in
  // table order immediately after the table, and the file ends at the
  // last payload byte.  This closes the blind spots a payload-domain
  // checksum cannot see — an offset flip on a zero-sized section, a
  // gap, an overlap, or trailing garbage.
  uint64_t ExpectedOffset = HeaderSize + NumSections * 24;
  for (uint64_t I = 0; I != NumSections; ++I) {
    Section S;
    S.Tag = TableCur.get<uint32_t>();
    S.Flags = TableCur.get<uint32_t>();
    S.Offset = TableCur.get<uint64_t>();
    S.Size = TableCur.get<uint64_t>();
    if (Version < 2) {
      // v1: the flags word is a reserved must-be-zero pad.
      if (S.Flags != 0)
        return stapError("reserved section-table bytes must be zero");
    } else {
      if (S.Flags & ~StapSectionFlagMask)
        return stapError("unknown section flags on '" + tagName(S.Tag) +
                         "'");
      // The section codecs are defined over canonical little-endian
      // payloads; a legacy big-endian writer's compressed stream would
      // decode to garbage, so refuse it outright.
      if (FileBigEndian && S.Flags != 0)
        return stapError("byte-swapped file carries compressed section '" +
                         tagName(S.Tag) +
                         "' (legacy big-endian tapes must be uncompressed)");
      if ((S.Flags & StapSectionVarint) && S.Tag != TagOps &&
          S.Tag != TagEdge)
        return stapError("varint flag is only defined for OPS/EDGE, not '" +
                         tagName(S.Tag) + "'");
    }
    if (!TableCur.ok() || S.Offset > File.size() ||
        S.Size > File.size() - S.Offset)
      return stapError("section '" + tagName(S.Tag) +
                       "' extends past the end of the file");
    if (S.Offset != ExpectedOffset)
      return stapError("section '" + tagName(S.Tag) +
                       "' is not stored at its expected offset");
    ExpectedOffset += S.Size;
    Sections.push_back(S);
  }
  if (ExpectedOffset != File.size())
    return stapError("file size does not match the section layout "
                     "(trailing bytes?)");

  // Checksum.  v1 hashes the payloads in table order; v2 hashes the
  // whole file with the checksum field zeroed.
  uint64_t Actual = Fnv1aBasis;
  if (Version >= 2) {
    const size_t ChecksumAt = 4 + 4 + 8 + 8;
    Actual = fnv1a64(File.data(), ChecksumAt, Actual);
    const char Zeros[8] = {};
    Actual = fnv1a64(Zeros, 8, Actual);
    Actual = fnv1a64(File.data() + HeaderSize, File.size() - HeaderSize,
                     Actual);
  } else {
    for (const Section &S : Sections)
      Actual = fnv1a64(File.data() + S.Offset, S.Size, Actual);
  }
  if (Actual != Checksum)
    return stapError("payload checksum mismatch (corrupted file)");

  // Index sections; both versions are strict: no duplicates, no unknown
  // tags (META is a v2 tag — in a v1 file it is unknown).
  std::map<uint32_t, const Section *> ByTag;
  for (const Section &S : Sections) {
    switch (S.Tag) {
    case TagOps:
    case TagVals:
    case TagEdge:
    case TagInpt:
    case TagOutp:
    case TagLabl:
    case TagVars:
    case TagDivg:
    case TagSig:
      break;
    case TagMeta:
      if (Version >= 2)
        break;
      return stapError("unknown section tag '" + tagName(S.Tag) + "'");
    default:
      return stapError("unknown section tag '" + tagName(S.Tag) + "'");
    }
    if (!ByTag.emplace(S.Tag, &S).second)
      return stapError("duplicate section '" + tagName(S.Tag) + "'");
  }
  for (uint32_t Required : {TagOps, TagVals, TagEdge, TagInpt, TagOutp})
    if (!ByTag.count(Required))
      return stapError("missing required section '" + tagName(Required) +
                       "'");

  // Undo per-section encodings.  Every decode is capped by the codec's
  // worst-case expansion before it allocates, so a hostile stored size
  // cannot demand a multi-gigabyte buffer.
  std::map<uint32_t, std::string> Decoded;
  for (const auto &[Tag, S] : ByTag) {
    Expected<std::string> Payload = decodeSectionPayload(
        Tag, S->Flags, File.data() + S->Offset, S->Size, NumNodes);
    if (!Payload)
      return Payload.status();
    Decoded[Tag] = std::move(Payload.value());
  }
  // Decoded payloads of a big-endian file keep the file's byte order
  // (only uncompressed sections get this far), so the per-section
  // cursors inherit the swap flag.
  const auto SectionCursor = [&](uint32_t Tag) {
    const std::string &P = Decoded[Tag];
    return Cursor(P.data(), P.size(), FileBigEndian);
  };

  // NumNodes is attacker-controlled: pin it against the fixed-stride
  // sections (OPS = 5, VALS = 16 bytes per node) before allocating
  // anything proportional to it.  Decoded sizes are bounded by the real
  // file size times the codec expansion caps, so a consistent NumNodes
  // is too — no multi-gigabyte resize from one flipped header byte.
  if (Decoded[TagOps].size() != NumNodes * OpsStride ||
      Decoded[TagVals].size() != NumNodes * ValsStride)
    return stapError("node count does not match the OPS/VALS section sizes");

  // Decode the node stream into the raw mirror.
  verify::RawTape Raw;
  Raw.Nodes.resize(NumNodes);
  {
    Cursor C = SectionCursor(TagOps);
    for (verify::RawNode &N : Raw.Nodes) {
      const uint8_t Kind = C.get<uint8_t>();
      N.AuxInt = C.get<int32_t>();
      if (Kind >= NumOpKinds)
        return stapError("invalid op kind " + std::to_string(Kind));
      N.Kind = static_cast<OpKind>(Kind);
    }
    if (!C.atEnd())
      return stapError("OPS section size does not match the node count");
  }
  {
    Cursor C = SectionCursor(TagVals);
    for (verify::RawNode &N : Raw.Nodes) {
      N.ValueLo = C.get<double>();
      N.ValueHi = C.get<double>();
    }
    if (!C.atEnd())
      return stapError("VALS section size does not match the node count");
  }
  {
    Cursor C = SectionCursor(TagEdge);
    for (verify::RawNode &N : Raw.Nodes) {
      N.NumArgs = C.get<uint8_t>();
      if (N.NumArgs > 2)
        return stapError("node edge count " + std::to_string(N.NumArgs) +
                         " exceeds the binary-operation maximum");
      for (unsigned A = 0; A != N.NumArgs; ++A) {
        N.Args[A] = C.get<NodeId>();
        N.PartialLo[A] = C.get<double>();
        N.PartialHi[A] = C.get<double>();
      }
    }
    if (!C.atEnd())
      return stapError("EDGE section is truncated or oversized");
  }
  const auto ReadIdList = [&](uint32_t Tag, std::vector<NodeId> &Out) {
    Cursor C = SectionCursor(Tag);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > NumNodes)
      return false;
    Out.reserve(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Out.push_back(C.get<NodeId>());
    return C.atEnd();
  };
  if (!ReadIdList(TagInpt, Raw.Inputs))
    return stapError("malformed INPT section");
  if (!ReadIdList(TagOutp, Raw.Outputs))
    return stapError("malformed OUTP section");

  // The acceptance gate: the decoded node stream must satisfy every
  // structural rule before a Tape is built from it.  Refuse, never
  // repair.
  const verify::VerifyReport Gate = verify::verifyStructure(Raw);
  if (Gate.hasErrors()) {
    std::string First = "structural error";
    if (!Gate.findings().empty())
      First = Gate.findings().front().rule().Id + std::string(": ") +
              Gate.findings().front().Message;
    return stapError("rejected by the verifyStructure acceptance gate (" +
                     std::to_string(Gate.errorCount()) + " errors; first: " +
                     First + ")");
  }

  // Registration sections (ids are range-checked; the gate only saw the
  // node stream and the input/output lists).
  LoadedTape Loaded;
  Loaded.Version = Version;
  const auto ValidId = [&](NodeId Id) {
    return Id >= 0 && static_cast<uint64_t>(Id) < NumNodes;
  };
  if (ByTag.count(TagMeta)) {
    Cursor C = SectionCursor(TagMeta);
    TapeMeta Meta;
    Meta.SchemaHash = C.get<uint64_t>();
    Meta.ShardIndex = C.get<uint64_t>();
    if (!C.getString(Meta.ShardName))
      return stapError("malformed META section");
    const uint8_t HasOptions = C.get<uint8_t>();
    Meta.OutputMode = C.get<uint8_t>();
    Meta.Metric = C.get<uint8_t>();
    Meta.BatchWidth = C.get<uint32_t>();
    const uint8_t Simplify = C.get<uint8_t>();
    const uint8_t BuildGraph = C.get<uint8_t>();
    const uint8_t VerifyTape = C.get<uint8_t>();
    Meta.Delta = C.get<double>();
    Meta.SignificanceCap = C.get<double>();
    // VerifyTape carries a core::VerifyLevel (0..2); a byte above the
    // levels this build knows means a newer writer, refuse it.
    if (!C.atEnd() || HasOptions > 1 || Simplify > 1 || BuildGraph > 1 ||
        VerifyTape > 2 || Meta.OutputMode > 1 || Meta.Metric > 1)
      return stapError("malformed META section");
    Meta.HasOptions = HasOptions != 0;
    Meta.Simplify = Simplify != 0;
    Meta.BuildGraph = BuildGraph != 0;
    Meta.VerifyTape = VerifyTape;
    // A shard recorded against a different wire schema (op-kind set,
    // node layout) would decode to plausible garbage; refuse it here so
    // a merge never consumes it.
    if (Meta.SchemaHash != stapSchemaHash())
      return stapError("META schema hash mismatch (tape was recorded by an "
                       "incompatible scorpio build)");
    Loaded.Meta = std::move(Meta);
  }
  if (ByTag.count(TagLabl)) {
    Cursor C = SectionCursor(TagLabl);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > NumNodes)
      return stapError("malformed LABL section");
    for (uint64_t I = 0; I != Count; ++I) {
      const NodeId Id = C.get<NodeId>();
      std::string Name;
      if (!C.getString(Name) || !ValidId(Id))
        return stapError("malformed LABL section");
      Loaded.Reg.Labels[Id] = std::move(Name);
    }
    if (!C.atEnd())
      return stapError("malformed LABL section");
  }
  if (ByTag.count(TagVars)) {
    Cursor C = SectionCursor(TagVars);
    const auto ReadList =
        [&](std::vector<std::pair<NodeId, std::string>> &Out) {
          const uint64_t Count = C.get<uint64_t>();
          if (Count > NumNodes)
            return false;
          for (uint64_t I = 0; I != Count; ++I) {
            const NodeId Id = C.get<NodeId>();
            std::string Name;
            if (!C.getString(Name) || !ValidId(Id))
              return false;
            Out.emplace_back(Id, std::move(Name));
          }
          return C.ok();
        };
    if (!ReadList(Loaded.Reg.InputVars) ||
        !ReadList(Loaded.Reg.IntermediateVars) ||
        !ReadList(Loaded.Reg.OutputVars) || !C.atEnd())
      return stapError("malformed VARS section");
  }
  std::vector<std::string> Divergences;
  if (ByTag.count(TagDivg)) {
    Cursor C = SectionCursor(TagDivg);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > (uint64_t{1} << 20))
      return stapError("malformed DIVG section");
    for (uint64_t I = 0; I != Count; ++I) {
      std::string D;
      if (!C.getString(D))
        return stapError("malformed DIVG section");
      Divergences.push_back(std::move(D));
    }
    if (!C.atEnd())
      return stapError("malformed DIVG section");
  }
  if (ByTag.count(TagSig)) {
    Cursor C = SectionCursor(TagSig);
    const uint64_t Count = C.get<uint64_t>();
    if (Count != NumNodes)
      return stapError("SIG section size does not match the node count");
    Loaded.Significance.reserve(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Loaded.Significance.push_back(C.get<double>());
    if (!C.atEnd())
      return stapError("malformed SIG section");
  }

  // Rebuild a real Tape through the recording API.  Post-gate this is
  // loss-free: E003 guarantees every node has a representable shape, and
  // E004/E005 guarantee every bound pair is a constructible Interval.
  Loaded.T.reserve(NumNodes);
  for (const verify::RawNode &N : Raw.Nodes) {
    const Interval V(N.ValueLo, N.ValueHi);
    switch (opArity(N.Kind)) {
    case 0:
      Loaded.T.recordInput(V);
      break;
    case 1:
      Loaded.T.recordUnary(N.Kind, V, N.Args[0],
                           Interval(N.PartialLo[0], N.PartialHi[0]),
                           N.AuxInt);
      break;
    default:
      Loaded.T.recordBinary(
          N.Kind, V, N.NumArgs > 0 ? N.Args[0] : InvalidNodeId,
          N.NumArgs > 0 ? Interval(N.PartialLo[0], N.PartialHi[0])
                        : Interval(0.0),
          N.NumArgs > 1 ? N.Args[1] : InvalidNodeId,
          N.NumArgs > 1 ? Interval(N.PartialLo[1], N.PartialHi[1])
                        : Interval(0.0));
      break;
    }
  }
  // The tape derives its input list from the recorded Input nodes; the
  // INPT section must agree or the file's registration is lying about
  // the node stream.
  if (Loaded.T.inputs() != Raw.Inputs)
    return stapError("INPT section does not match the recorded input nodes");
  for (const std::string &D : Divergences)
    Loaded.T.noteDivergence(D);
  Loaded.Reg.Outputs = Raw.Outputs;
  return Expected<LoadedTape>(std::move(Loaded));
}

Expected<LoadedTape> scorpio::loadStap(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return stapError("cannot open '" + Path + "' for reading");
  return readStap(IS);
}
