//===- tape/TapeIO.cpp - Versioned .stap tape serialization ---------------===//

#include "tape/TapeIO.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <type_traits>

using namespace scorpio;
using namespace scorpio::diag;

namespace {

constexpr char Magic[4] = {'S', 'T', 'A', 'P'};

constexpr uint32_t fourCC(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}

constexpr uint32_t TagOps = fourCC('O', 'P', 'S', ' ');
constexpr uint32_t TagVals = fourCC('V', 'A', 'L', 'S');
constexpr uint32_t TagEdge = fourCC('E', 'D', 'G', 'E');
constexpr uint32_t TagInpt = fourCC('I', 'N', 'P', 'T');
constexpr uint32_t TagOutp = fourCC('O', 'U', 'T', 'P');
constexpr uint32_t TagLabl = fourCC('L', 'A', 'B', 'L');
constexpr uint32_t TagVars = fourCC('V', 'A', 'R', 'S');
constexpr uint32_t TagDivg = fourCC('D', 'I', 'V', 'G');
constexpr uint32_t TagSig = fourCC('S', 'I', 'G', ' ');

std::string tagName(uint32_t Tag) {
  std::string S(4, ' ');
  std::memcpy(S.data(), &Tag, 4);
  while (!S.empty() && S.back() == ' ')
    S.pop_back();
  return S;
}

uint64_t fnv1a64(const char *Data, size_t Size, uint64_t Hash) {
  for (size_t I = 0; I != Size; ++I) {
    Hash ^= static_cast<uint8_t>(Data[I]);
    Hash *= 1099511628211ULL;
  }
  return Hash;
}
constexpr uint64_t Fnv1aBasis = 14695981039346656037ULL;

/// Appends POD values to a byte buffer.
class ByteWriter {
public:
  template <typename T> void put(const T &V) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t At = Buf.size();
    Buf.resize(At + sizeof(T));
    std::memcpy(Buf.data() + At, &V, sizeof(T));
  }
  void putString(const std::string &S) {
    put(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }
  const std::string &bytes() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked POD reader over one section's payload.  Any read past
/// the end latches the failure flag and yields zeroes, so parsing code
/// can run straight-line and test ok() once.
class Cursor {
public:
  Cursor(const char *Data, size_t Size) : Data(Data), Size(Size) {}

  template <typename T> T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T V{};
    if (Pos + sizeof(T) > Size || !Ok) {
      Ok = false;
      return V;
    }
    std::memcpy(&V, Data + Pos, sizeof(T));
    Pos += sizeof(T);
    return V;
  }
  bool getString(std::string &Out) {
    const uint32_t Len = get<uint32_t>();
    if (!Ok || Pos + Len > Size) {
      Ok = false;
      return false;
    }
    Out.assign(Data + Pos, Len);
    Pos += Len;
    return true;
  }
  bool ok() const { return Ok; }
  bool atEnd() const { return Ok && Pos == Size; }

private:
  const char *Data;
  size_t Size;
  size_t Pos = 0;
  bool Ok = true;
};

std::string opsPayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(static_cast<uint8_t>(N.Kind));
    W.put(N.AuxInt);
  }
  return W.bytes();
}

std::string valsPayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(N.ValueLo);
    W.put(N.ValueHi);
  }
  return W.bytes();
}

std::string edgePayload(const verify::RawTape &Raw) {
  ByteWriter W;
  for (const verify::RawNode &N : Raw.Nodes) {
    W.put(N.NumArgs);
    for (unsigned A = 0; A != N.NumArgs && A != 2; ++A) {
      W.put(N.Args[A]);
      W.put(N.PartialLo[A]);
      W.put(N.PartialHi[A]);
    }
  }
  return W.bytes();
}

std::string idListPayload(const std::vector<NodeId> &Ids) {
  ByteWriter W;
  W.put(static_cast<uint64_t>(Ids.size()));
  for (NodeId Id : Ids)
    W.put(Id);
  return W.bytes();
}

void putNamedIds(ByteWriter &W,
                 const std::vector<std::pair<NodeId, std::string>> &List) {
  W.put(static_cast<uint64_t>(List.size()));
  for (const auto &[Id, Name] : List) {
    W.put(Id);
    W.putString(Name);
  }
}

struct SectionOut {
  uint32_t Tag;
  std::string Payload;
};

Status writeSections(std::ostream &OS, size_t NumNodes,
                     const std::vector<SectionOut> &Sections) {
  uint64_t Checksum = Fnv1aBasis;
  for (const SectionOut &S : Sections)
    Checksum = fnv1a64(S.Payload.data(), S.Payload.size(), Checksum);

  ByteWriter Header;
  Header.put(Magic);
  Header.put(StapVersion);
  Header.put(static_cast<uint64_t>(NumNodes));
  Header.put(static_cast<uint64_t>(Sections.size()));
  Header.put(Checksum);

  // Section table: tag, pad, absolute offset, size.
  uint64_t Offset = Header.bytes().size() + Sections.size() * 24;
  ByteWriter Table;
  for (const SectionOut &S : Sections) {
    Table.put(S.Tag);
    Table.put(static_cast<uint32_t>(0));
    Table.put(Offset);
    Table.put(static_cast<uint64_t>(S.Payload.size()));
    Offset += S.Payload.size();
  }

  OS.write(Header.bytes().data(),
           static_cast<std::streamsize>(Header.bytes().size()));
  OS.write(Table.bytes().data(),
           static_cast<std::streamsize>(Table.bytes().size()));
  for (const SectionOut &S : Sections)
    OS.write(S.Payload.data(), static_cast<std::streamsize>(S.Payload.size()));
  SCORPIO_REQUIRE(OS.good(), ErrC::InvalidState,
                  "writeStap: output stream write failed",
                  Status::error(ErrC::InvalidState,
                                "writeStap: output stream write failed"));
  return Status::ok();
}

Status stapError(std::string Message) {
  return Status::error(ErrC::InvalidArgument, "stap: " + std::move(Message));
}

} // namespace

Status scorpio::writeStap(std::ostream &OS, const verify::RawTape &Raw,
                          const TapeRegistration &Reg,
                          std::span<const double> Significance,
                          std::span<const std::string> Divergences) {
  if (!Significance.empty() && Significance.size() != Raw.Nodes.size())
    return stapError("significance vector size does not match node count");

  std::vector<SectionOut> Sections;
  Sections.push_back({TagOps, opsPayload(Raw)});
  Sections.push_back({TagVals, valsPayload(Raw)});
  Sections.push_back({TagEdge, edgePayload(Raw)});
  Sections.push_back({TagInpt, idListPayload(Raw.Inputs)});
  Sections.push_back({TagOutp, idListPayload(Raw.Outputs)});
  if (!Reg.Labels.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Reg.Labels.size()));
    for (const auto &[Id, Name] : Reg.Labels) {
      W.put(Id);
      W.putString(Name);
    }
    Sections.push_back({TagLabl, W.bytes()});
  }
  if (!Reg.InputVars.empty() || !Reg.IntermediateVars.empty() ||
      !Reg.OutputVars.empty()) {
    ByteWriter W;
    putNamedIds(W, Reg.InputVars);
    putNamedIds(W, Reg.IntermediateVars);
    putNamedIds(W, Reg.OutputVars);
    Sections.push_back({TagVars, W.bytes()});
  }
  if (!Divergences.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Divergences.size()));
    for (const std::string &D : Divergences)
      W.putString(D);
    Sections.push_back({TagDivg, W.bytes()});
  }
  if (!Significance.empty()) {
    ByteWriter W;
    W.put(static_cast<uint64_t>(Significance.size()));
    for (double S : Significance)
      W.put(S);
    Sections.push_back({TagSig, W.bytes()});
  }
  return writeSections(OS, Raw.Nodes.size(), Sections);
}

Status scorpio::writeStap(std::ostream &OS, const Tape &T,
                          const TapeRegistration &Reg,
                          std::span<const double> Significance) {
  const verify::RawTape Raw = verify::extractRaw(T, Reg.Outputs);
  return writeStap(OS, Raw, Reg, Significance, T.divergences());
}

Status scorpio::saveStap(const std::string &Path, const Tape &T,
                         const TapeRegistration &Reg,
                         std::span<const double> Significance) {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS)
    return stapError("cannot open '" + Path + "' for writing");
  return writeStap(OS, T, Reg, Significance);
}

Expected<LoadedTape> scorpio::readStap(std::istream &IS) {
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  const std::string File = Buf.str();

  // Header.
  const size_t HeaderSize = 4 + 4 + 8 + 8 + 8;
  if (File.size() < 4 || std::memcmp(File.data(), Magic, 4) != 0)
    return stapError("not a .stap file (bad magic)");
  if (File.size() < HeaderSize)
    return stapError("truncated header");
  Cursor H(File.data() + 4, HeaderSize - 4);
  const uint32_t Version = H.get<uint32_t>();
  if (Version != StapVersion)
    return stapError("unsupported format version " + std::to_string(Version));
  const uint64_t NumNodes = H.get<uint64_t>();
  const uint64_t NumSections = H.get<uint64_t>();
  const uint64_t Checksum = H.get<uint64_t>();
  // A node or section count near 2^64 would overflow the size math
  // below; nothing legitimate comes close.
  if (NumNodes > (uint64_t{1} << 32) || NumSections > 1024)
    return stapError("implausible node or section count");

  // Section table.
  if (File.size() < HeaderSize + NumSections * 24)
    return stapError("truncated section table");
  struct Section {
    uint32_t Tag;
    uint64_t Offset;
    uint64_t Size;
  };
  std::vector<Section> Sections;
  Cursor TableCur(File.data() + HeaderSize, NumSections * 24);
  for (uint64_t I = 0; I != NumSections; ++I) {
    Section S;
    S.Tag = TableCur.get<uint32_t>();
    // Reserved pad: v1 is strict, every byte of the file is load-bearing
    // (a writer that sets it is a different format, and tamper detection
    // must not have a blind spot the checksum does not cover).
    if (TableCur.get<uint32_t>() != 0)
      return stapError("reserved section-table bytes must be zero");
    S.Offset = TableCur.get<uint64_t>();
    S.Size = TableCur.get<uint64_t>();
    if (!TableCur.ok() || S.Offset > File.size() ||
        S.Size > File.size() - S.Offset)
      return stapError("section '" + tagName(S.Tag) +
                       "' extends past the end of the file");
    Sections.push_back(S);
  }

  // Checksum over every payload, in table order.
  uint64_t Actual = Fnv1aBasis;
  for (const Section &S : Sections)
    Actual = fnv1a64(File.data() + S.Offset, S.Size, Actual);
  if (Actual != Checksum)
    return stapError("payload checksum mismatch (corrupted file)");

  // Index sections; v1 is strict: no duplicates, no unknown tags.
  std::map<uint32_t, const Section *> ByTag;
  for (const Section &S : Sections) {
    switch (S.Tag) {
    case TagOps:
    case TagVals:
    case TagEdge:
    case TagInpt:
    case TagOutp:
    case TagLabl:
    case TagVars:
    case TagDivg:
    case TagSig:
      break;
    default:
      return stapError("unknown section tag '" + tagName(S.Tag) + "'");
    }
    if (!ByTag.emplace(S.Tag, &S).second)
      return stapError("duplicate section '" + tagName(S.Tag) + "'");
  }
  for (uint32_t Required : {TagOps, TagVals, TagEdge, TagInpt, TagOutp})
    if (!ByTag.count(Required))
      return stapError("missing required section '" + tagName(Required) +
                       "'");
  const auto SectionCursor = [&](uint32_t Tag) {
    const Section *S = ByTag[Tag];
    return Cursor(File.data() + S->Offset, S->Size);
  };

  // NumNodes is attacker-controlled: pin it against the fixed-stride
  // sections (OPS = 5, VALS = 16 bytes per node) before allocating
  // anything proportional to it.  Section sizes are bounded by the real
  // file size, so a consistent NumNodes is too — no multi-gigabyte
  // resize from one flipped header byte.
  if (ByTag[TagOps]->Size != NumNodes * 5 ||
      ByTag[TagVals]->Size != NumNodes * 16)
    return stapError("node count does not match the OPS/VALS section sizes");

  // Decode the node stream into the raw mirror.
  verify::RawTape Raw;
  Raw.Nodes.resize(NumNodes);
  {
    Cursor C = SectionCursor(TagOps);
    for (verify::RawNode &N : Raw.Nodes) {
      const uint8_t Kind = C.get<uint8_t>();
      N.AuxInt = C.get<int32_t>();
      if (Kind >= NumOpKinds)
        return stapError("invalid op kind " + std::to_string(Kind));
      N.Kind = static_cast<OpKind>(Kind);
    }
    if (!C.atEnd())
      return stapError("OPS section size does not match the node count");
  }
  {
    Cursor C = SectionCursor(TagVals);
    for (verify::RawNode &N : Raw.Nodes) {
      N.ValueLo = C.get<double>();
      N.ValueHi = C.get<double>();
    }
    if (!C.atEnd())
      return stapError("VALS section size does not match the node count");
  }
  {
    Cursor C = SectionCursor(TagEdge);
    for (verify::RawNode &N : Raw.Nodes) {
      N.NumArgs = C.get<uint8_t>();
      if (N.NumArgs > 2)
        return stapError("node edge count " + std::to_string(N.NumArgs) +
                         " exceeds the binary-operation maximum");
      for (unsigned A = 0; A != N.NumArgs; ++A) {
        N.Args[A] = C.get<NodeId>();
        N.PartialLo[A] = C.get<double>();
        N.PartialHi[A] = C.get<double>();
      }
    }
    if (!C.atEnd())
      return stapError("EDGE section is truncated or oversized");
  }
  const auto ReadIdList = [&](uint32_t Tag, std::vector<NodeId> &Out) {
    Cursor C = SectionCursor(Tag);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > NumNodes)
      return false;
    Out.reserve(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Out.push_back(C.get<NodeId>());
    return C.atEnd();
  };
  if (!ReadIdList(TagInpt, Raw.Inputs))
    return stapError("malformed INPT section");
  if (!ReadIdList(TagOutp, Raw.Outputs))
    return stapError("malformed OUTP section");

  // The acceptance gate: the decoded node stream must satisfy every
  // structural rule before a Tape is built from it.  Refuse, never
  // repair.
  const verify::VerifyReport Gate = verify::verifyStructure(Raw);
  if (Gate.hasErrors()) {
    std::string First = "structural error";
    if (!Gate.findings().empty())
      First = Gate.findings().front().rule().Id + std::string(": ") +
              Gate.findings().front().Message;
    return stapError("rejected by the verifyStructure acceptance gate (" +
                     std::to_string(Gate.errorCount()) + " errors; first: " +
                     First + ")");
  }

  // Registration sections (ids are range-checked; the gate only saw the
  // node stream and the input/output lists).
  LoadedTape Loaded;
  const auto ValidId = [&](NodeId Id) {
    return Id >= 0 && static_cast<uint64_t>(Id) < NumNodes;
  };
  if (ByTag.count(TagLabl)) {
    Cursor C = SectionCursor(TagLabl);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > NumNodes)
      return stapError("malformed LABL section");
    for (uint64_t I = 0; I != Count; ++I) {
      const NodeId Id = C.get<NodeId>();
      std::string Name;
      if (!C.getString(Name) || !ValidId(Id))
        return stapError("malformed LABL section");
      Loaded.Reg.Labels[Id] = std::move(Name);
    }
    if (!C.atEnd())
      return stapError("malformed LABL section");
  }
  if (ByTag.count(TagVars)) {
    Cursor C = SectionCursor(TagVars);
    const auto ReadList =
        [&](std::vector<std::pair<NodeId, std::string>> &Out) {
          const uint64_t Count = C.get<uint64_t>();
          if (Count > NumNodes)
            return false;
          for (uint64_t I = 0; I != Count; ++I) {
            const NodeId Id = C.get<NodeId>();
            std::string Name;
            if (!C.getString(Name) || !ValidId(Id))
              return false;
            Out.emplace_back(Id, std::move(Name));
          }
          return C.ok();
        };
    if (!ReadList(Loaded.Reg.InputVars) ||
        !ReadList(Loaded.Reg.IntermediateVars) ||
        !ReadList(Loaded.Reg.OutputVars) || !C.atEnd())
      return stapError("malformed VARS section");
  }
  std::vector<std::string> Divergences;
  if (ByTag.count(TagDivg)) {
    Cursor C = SectionCursor(TagDivg);
    const uint64_t Count = C.get<uint64_t>();
    if (Count > (uint64_t{1} << 20))
      return stapError("malformed DIVG section");
    for (uint64_t I = 0; I != Count; ++I) {
      std::string D;
      if (!C.getString(D))
        return stapError("malformed DIVG section");
      Divergences.push_back(std::move(D));
    }
    if (!C.atEnd())
      return stapError("malformed DIVG section");
  }
  if (ByTag.count(TagSig)) {
    Cursor C = SectionCursor(TagSig);
    const uint64_t Count = C.get<uint64_t>();
    if (Count != NumNodes)
      return stapError("SIG section size does not match the node count");
    Loaded.Significance.reserve(Count);
    for (uint64_t I = 0; I != Count; ++I)
      Loaded.Significance.push_back(C.get<double>());
    if (!C.atEnd())
      return stapError("malformed SIG section");
  }

  // Rebuild a real Tape through the recording API.  Post-gate this is
  // loss-free: E003 guarantees every node has a representable shape, and
  // E004/E005 guarantee every bound pair is a constructible Interval.
  Loaded.T.reserve(NumNodes);
  for (const verify::RawNode &N : Raw.Nodes) {
    const Interval V(N.ValueLo, N.ValueHi);
    switch (opArity(N.Kind)) {
    case 0:
      Loaded.T.recordInput(V);
      break;
    case 1:
      Loaded.T.recordUnary(N.Kind, V, N.Args[0],
                           Interval(N.PartialLo[0], N.PartialHi[0]),
                           N.AuxInt);
      break;
    default:
      Loaded.T.recordBinary(
          N.Kind, V, N.NumArgs > 0 ? N.Args[0] : InvalidNodeId,
          N.NumArgs > 0 ? Interval(N.PartialLo[0], N.PartialHi[0])
                        : Interval(0.0),
          N.NumArgs > 1 ? N.Args[1] : InvalidNodeId,
          N.NumArgs > 1 ? Interval(N.PartialLo[1], N.PartialHi[1])
                        : Interval(0.0));
      break;
    }
  }
  // The tape derives its input list from the recorded Input nodes; the
  // INPT section must agree or the file's registration is lying about
  // the node stream.
  if (Loaded.T.inputs() != Raw.Inputs)
    return stapError("INPT section does not match the recorded input nodes");
  for (const std::string &D : Divergences)
    Loaded.T.noteDivergence(D);
  Loaded.Reg.Outputs = Raw.Outputs;
  return Expected<LoadedTape>(std::move(Loaded));
}

Expected<LoadedTape> scorpio::loadStap(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return stapError("cannot open '" + Path + "' for reading");
  return readStap(IS);
}
