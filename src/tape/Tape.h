//===- tape/Tape.h - DynDFG recording tape for interval adjoint AD --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Dynamic Data Flow Graph (DynDFG) recording mechanism of
/// dco/scorpio (paper Section 2.3).  Every elementary operation executed
/// on the overloading type appends one node to the active tape; edges
/// carry interval-valued local partial derivatives computed during the
/// forward sweep (Figure 1a).  A reverse sweep propagates interval
/// adjoints backwards (Eq. 7-9) so that after a single pass the interval
/// derivative of the output with respect to *every* intermediate variable
/// is available (Figure 1b).
///
/// Storage is structure-of-arrays over chunked arenas (ChunkedVector):
/// recording never relocates nodes, NodeIds and element addresses are
/// stable, and the reverse sweep streams only the sweep-hot fields
/// (argument ids, partials, adjoints) instead of striding over full
/// nodes.  reverseSweepBatch() additionally propagates a configurable
/// number of independent output seeds ("adjoint lanes") in one backward
/// pass, which is what makes PerOutput significance analysis of
/// m-output kernels cost ceil(m/K) sweeps instead of m.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_TAPE_H
#define SCORPIO_TAPE_TAPE_H

#include "interval/Interval.h"
#include "simd/AlignedAlloc.h"
#include "support/Diag.h"
#include "tape/ChunkedVector.h"

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace scorpio {

/// Elementary function kinds (the phi_j of Eq. 2).
enum class OpKind : uint8_t {
  Input,
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Sin,
  Cos,
  Tan,
  Exp,
  Log,
  Sqrt,
  Sqr,
  PowInt,
  Pow,
  Fabs,
  Erf,
  Atan,
  Min,
  Max,
  Round,
  TanOverX
};

/// The highest-valued OpKind enumerator.  Exhaustive iteration (tests,
/// the tape verifier's rule catalog) walks [0, LastOpKind]; when adding
/// an enumerator, update this anchor — the opkind_exhaustive_test and
/// the -Werror=switch'd switches below fail the build otherwise.
inline constexpr OpKind LastOpKind = OpKind::TanOverX;
inline constexpr size_t NumOpKinds = static_cast<size_t>(LastOpKind) + 1;

/// Human-readable operation mnemonic ("add", "sin", ...).
const char *opKindName(OpKind K);

/// True for associative accumulation operations (+, *, min, max) whose
/// self-referential chains (`res = res + term`) are anti-dependency
/// aggregation nodes in the sense of Algorithm 1 step S4.
bool isAccumulativeOp(OpKind K);

/// Number of operands the elementary function phi takes: 0 for Input,
/// 1 for unary kinds, 2 for binary kinds.  This is the *mathematical*
/// arity; a recorded node may carry fewer edges when operands are
/// passive constants (they are not recorded), but never more.
unsigned opArity(OpKind K);

/// Index of a node within its tape.
using NodeId = int32_t;
inline constexpr NodeId InvalidNodeId = -1;

/// Sweep-hot per-node data: recorded (active) argument ids and their
/// interval local partials d(phi_j)/d(u_i).  Kept separate from the cold
/// metadata so the reverse sweep streams only these cache lines.
struct TapeEdges {
  Interval Partials[2];
  NodeId Args[2] = {InvalidNodeId, InvalidNodeId};
  uint8_t NumArgs = 0;
};

/// Cold per-node metadata (graph export, DynDFG construction).
struct TapeOp {
  OpKind Kind = OpKind::Input;
  /// Integer exponent for PowInt.
  int32_t AuxInt = 0;
};

/// Which implementation a reverse sweep runs on.  Both produce
/// bit-identical adjoints — the equivalence is enforced by the
/// SCORPIO-E008 verifier rule and tests/simd_sweep_test.cpp — so Auto
/// is always safe; Scalar exists as the reference side of that
/// cross-check and for A/B benchmarking (bench/perf_report's
/// simd_sweep_speedup).
enum class SweepBackend : uint8_t {
  /// Explicit-width SIMD lane loops when compiled in
  /// (simd::NativeLanes > 1), the scalar loop otherwise.
  Auto,
  /// The scalar per-lane loop, unconditionally.
  Scalar,
};

/// A dense NumNodes x Width matrix of interval adjoints, striped per node
/// (the Width lanes of one node are contiguous).  Each lane is one
/// independent reverse-sweep seed; Tape::reverseSweepBatch() propagates
/// all lanes in a single backward pass over the tape.
///
/// Storage starts cache-line-aligned so the vectorized sweep's lane
/// loads tile cleanly (see simd/AlignedAlloc.h).
class BatchAdjoints {
public:
  BatchAdjoints() = default;
  BatchAdjoints(size_t NumNodes, unsigned Width) { resize(NumNodes, Width); }

  /// Resizes to \p NumNodes x \p Width and zeroes every lane.
  void resize(size_t NumNodes, unsigned Width) {
    Nodes = NumNodes;
    Lanes = Width;
    Data.assign(NumNodes * Width, Interval(0.0));
    assert((Data.empty() || simd::isCacheLineAligned(Data.data())) &&
           "BatchAdjoints storage must be cache-line-aligned");
  }

  size_t numNodes() const { return Nodes; }
  unsigned width() const { return Lanes; }

  Interval &at(NodeId Id, unsigned Lane) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes && Lane < Lanes);
    return Data[static_cast<size_t>(Id) * Lanes + Lane];
  }
  const Interval &at(NodeId Id, unsigned Lane) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes && Lane < Lanes);
    return Data[static_cast<size_t>(Id) * Lanes + Lane];
  }

  /// The contiguous lane stripe of node \p Id.
  Interval *row(NodeId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes);
    return Data.data() + static_cast<size_t>(Id) * Lanes;
  }
  const Interval *row(NodeId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes);
    return Data.data() + static_cast<size_t>(Id) * Lanes;
  }

private:
  std::vector<Interval, simd::AlignedAllocator<Interval>> Data;
  size_t Nodes = 0;
  unsigned Lanes = 0;
};

/// An append-only tape of elementary operations plus divergence
/// diagnostics.
///
/// Constant operands are *passive*: they are not recorded, so a node's
/// argument list contains only the operands that transitively depend on a
/// registered input.  This matches the paper's DynDFG figures, which show
/// only value-carrying vertices.
class Tape {
public:
  Tape() = default;
  Tape(const Tape &) = delete;
  Tape &operator=(const Tape &) = delete;
  // Movable so deserialized tapes (tape/TapeIO.h) can be handed to an
  // Analysis wholesale.  Moving while a tape is active would dangle the
  // thread-local active() pointer; ActiveTapeScope only ever move-
  // assigns *into* its owned tape, whose address is stable.
  Tape(Tape &&) = default;
  Tape &operator=(Tape &&) = default;

  /// Preallocates storage for \p ExpectedNodes nodes.  A pure hint:
  /// recording beyond it simply grows block by block.  Kernels that know
  /// their op count (apps, sharded drivers) call this to avoid growth
  /// checks on the hot recording path.
  void reserve(size_t ExpectedNodes);

  /// Appends an input node holding enclosure \p V; returns its id.
  NodeId recordInput(const Interval &V);

  /// Appends a unary operation node.
  NodeId recordUnary(OpKind K, const Interval &V, NodeId Arg,
                     const Interval &Partial, int32_t AuxInt = 0);

  /// Appends a binary operation node.  Either argument may be
  /// InvalidNodeId (a passive operand); at least one must be active.
  NodeId recordBinary(OpKind K, const Interval &V, NodeId Arg0,
                      const Interval &Partial0, NodeId Arg1,
                      const Interval &Partial1);

  size_t size() const { return Values.size(); }
  bool empty() const { return Values.empty(); }

  /// True iff \p Id names a recorded node.  Node ids also arrive from
  /// callers (tests, tooling, seed lists), so the accessors below
  /// live-check them and recover with neutral fallbacks instead of
  /// reading out of bounds in Release builds.
  bool isValidNode(NodeId Id) const {
    return Id >= 0 && static_cast<size_t>(Id) < Values.size();
  }

  /// Interval enclosure [u_j] computed during the forward sweep.
  const Interval &value(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::value: node id out of range"))
      return zeroInterval();
    return Values[static_cast<size_t>(Id)];
  }

  /// Elementary operation of node \p Id.
  OpKind kind(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::kind: node id out of range"))
      return OpKind::Input;
    return Ops[static_cast<size_t>(Id)].Kind;
  }

  /// Integer exponent for PowInt nodes.
  int32_t auxInt(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::auxInt: node id out of range"))
      return 0;
    return Ops[static_cast<size_t>(Id)].AuxInt;
  }

  /// Number of recorded (active) arguments of node \p Id.
  unsigned numArgs(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::numArgs: node id out of range"))
      return 0;
    return Edges[static_cast<size_t>(Id)].NumArgs;
  }

  /// The \p A-th recorded argument id of node \p Id.
  NodeId arg(NodeId Id, unsigned A) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::arg: node id out of range"))
      return InvalidNodeId;
    const TapeEdges &E = Edges[static_cast<size_t>(Id)];
    if (!SCORPIO_CHECK(A < E.NumArgs, diag::ErrC::OutOfRange,
                       "Tape::arg: argument index out of range"))
      return InvalidNodeId;
    // NumArgs <= 2, so A & 1 == A here; the mask makes the access
    // provably in-bounds for the optimizer as well.
    return E.Args[A & 1];
  }

  /// The interval local partial with respect to the \p A-th argument.
  const Interval &partial(NodeId Id, unsigned A) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::partial: node id out of range"))
      return zeroInterval();
    const TapeEdges &E = Edges[static_cast<size_t>(Id)];
    if (!SCORPIO_CHECK(A < E.NumArgs, diag::ErrC::OutOfRange,
                       "Tape::partial: argument index out of range"))
      return zeroInterval();
    // NumArgs <= 2, so A & 1 == A here (see arg()).
    return E.Partials[A & 1];
  }

  /// Interval adjoint accumulated by reverseSweep().
  const Interval &adjoint(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "Tape::adjoint: node id out of range"))
      return zeroInterval();
    return Adjoints[static_cast<size_t>(Id)];
  }

  /// Ids of all recorded input nodes, in registration order.
  const std::vector<NodeId> &inputs() const { return Inputs; }

  /// Resets every adjoint to [0, 0].
  void clearAdjoints();

  /// Adds \p Seed to the adjoint of \p Id (Eq. 7 allows y_(1) seeds).
  void seedAdjoint(NodeId Id, const Interval &Seed);

  /// Propagates adjoints from the last node towards the inputs (Eq. 8).
  /// Callers seed output adjoints first.  Auto classifies point partials
  /// once per edge and shortcuts their products (bit-exactly the full
  /// interval multiply); Scalar is the textbook per-edge operator loop.
  /// Both orderings and results are bit-identical.
  void reverseSweep(SweepBackend Backend = SweepBackend::Auto);

  /// Vector-adjoint mode: one backward pass propagating
  /// K = Seeds.size() independent seeds, lane k starting from
  /// Seeds[k].first with adjoint Seeds[k].second.  \p Out is resized to
  /// size() x K and zeroed first.  Lane k of the result is bit-identical
  /// to clearAdjoints() + seedAdjoint(Seeds[k]...) + reverseSweep(): the
  /// per-lane operation sequence is exactly the single-sweep sequence.
  /// Does not touch the tape's own adjoints.
  ///
  /// With Backend == Auto the lane loops run simd::NativeLanes-wide
  /// vertical SIMD over the BatchAdjoints rows (scalar tail for the
  /// remainder); Scalar forces the reference per-lane loop.  The two
  /// backends are bit-identical — the SCORPIO-E008 cross-check replays
  /// both and compares every adjoint.
  void reverseSweepBatch(std::span<const std::pair<NodeId, Interval>> Seeds,
                         BatchAdjoints &Out,
                         SweepBackend Backend = SweepBackend::Auto) const;

  /// Convenience form seeding every listed node with [1, 1].
  void reverseSweepBatch(std::span<const NodeId> SeedNodes,
                         BatchAdjoints &Out,
                         SweepBackend Backend = SweepBackend::Auto) const;

  /// Process-wide count of adjoint reverse sweeps executed since process
  /// start (each reverseSweep() call and each reverseSweepBatch() pass
  /// counts once, whatever its lane width).  Monotonic and thread-safe;
  /// the result-cache tests assert that a warm cache serves a repeated
  /// merge without this counter moving.
  static uint64_t totalReverseSweeps();

  /// Records that a kernel branched on an ambiguous interval comparison.
  /// The analysis result will be flagged invalid (paper Section 2.2).
  void noteDivergence(std::string Description);

  bool hasDiverged() const { return !Divergences.empty(); }
  const std::vector<std::string> &divergences() const { return Divergences; }

  /// The tape new IAValue operations record into, or nullptr when none is
  /// active (pure interval evaluation).  Thread-local.
  static Tape *active();

private:
  friend class ActiveTapeScope;
  static Tape *&activeSlot();

  /// Neutral fallback returned by reference-returning accessors when a
  /// live check fails (there may be no node to refer to at all).
  static const Interval &zeroInterval() {
    static const Interval Zero(0.0);
    return Zero;
  }

  /// SoA node storage over chunked arenas (stable addresses, no
  /// reallocation-induced copies).
  ChunkedVector<Interval> Values;
  ChunkedVector<TapeOp> Ops;
  ChunkedVector<TapeEdges> Edges;
  ChunkedVector<Interval> Adjoints;
  std::vector<NodeId> Inputs;
  std::vector<std::string> Divergences;
};

/// RAII activation of a tape for the current thread.
///
/// \code
///   ActiveTapeScope Scope;
///   IAValue X = ...;            // operations record into Scope.tape()
///   Scope.tape().reverseSweep();
/// \endcode
class ActiveTapeScope {
public:
  ActiveTapeScope();
  ~ActiveTapeScope();
  ActiveTapeScope(const ActiveTapeScope &) = delete;
  ActiveTapeScope &operator=(const ActiveTapeScope &) = delete;

  Tape &tape() { return OwnedTape; }
  const Tape &tape() const { return OwnedTape; }

private:
  Tape OwnedTape;
  Tape *Previous;
};

} // namespace scorpio

#endif // SCORPIO_TAPE_TAPE_H
