//===- tape/Tape.h - DynDFG recording tape for interval adjoint AD --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Dynamic Data Flow Graph (DynDFG) recording mechanism of
/// dco/scorpio (paper Section 2.3).  Every elementary operation executed
/// on the overloading type appends one node to the active tape; edges
/// carry interval-valued local partial derivatives computed during the
/// forward sweep (Figure 1a).  A reverse sweep propagates interval
/// adjoints backwards (Eq. 7-9) so that after a single pass the interval
/// derivative of the output with respect to *every* intermediate variable
/// is available (Figure 1b).
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_TAPE_H
#define SCORPIO_TAPE_TAPE_H

#include "interval/Interval.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace scorpio {

/// Elementary function kinds (the phi_j of Eq. 2).
enum class OpKind : uint8_t {
  Input,
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Sin,
  Cos,
  Tan,
  Exp,
  Log,
  Sqrt,
  Sqr,
  PowInt,
  Pow,
  Fabs,
  Erf,
  Atan,
  Min,
  Max,
  Round,
  TanOverX
};

/// Human-readable operation mnemonic ("add", "sin", ...).
const char *opKindName(OpKind K);

/// True for associative accumulation operations (+, *, min, max) whose
/// self-referential chains (`res = res + term`) are anti-dependency
/// aggregation nodes in the sense of Algorithm 1 step S4.
bool isAccumulativeOp(OpKind K);

/// Index of a node within its tape.
using NodeId = int32_t;
inline constexpr NodeId InvalidNodeId = -1;

/// One dynamically executed elementary function u_j = phi_j(u_i).
struct TapeNode {
  /// Interval enclosure [u_j] computed during the forward sweep.
  Interval Value;
  /// Interval local partials d(phi_j)/d(u_i) for each recorded argument.
  Interval Partials[2];
  /// Interval adjoint, accumulated by Tape::reverseSweep().
  Interval Adjoint;
  /// Recorded (active) argument node ids.
  NodeId Args[2] = {InvalidNodeId, InvalidNodeId};
  OpKind Kind = OpKind::Input;
  uint8_t NumArgs = 0;
  /// Integer exponent for PowInt.
  int32_t AuxInt = 0;
};

/// An append-only tape of TapeNodes plus divergence diagnostics.
///
/// Constant operands are *passive*: they are not recorded, so a node's
/// argument list contains only the operands that transitively depend on a
/// registered input.  This matches the paper's DynDFG figures, which show
/// only value-carrying vertices.
class Tape {
public:
  Tape() = default;
  Tape(const Tape &) = delete;
  Tape &operator=(const Tape &) = delete;

  /// Appends an input node holding enclosure \p V; returns its id.
  NodeId recordInput(const Interval &V);

  /// Appends a unary operation node.
  NodeId recordUnary(OpKind K, const Interval &V, NodeId Arg,
                     const Interval &Partial, int32_t AuxInt = 0);

  /// Appends a binary operation node.  Either argument may be
  /// InvalidNodeId (a passive operand); at least one must be active.
  NodeId recordBinary(OpKind K, const Interval &V, NodeId Arg0,
                      const Interval &Partial0, NodeId Arg1,
                      const Interval &Partial1);

  size_t size() const { return Nodes.size(); }
  bool empty() const { return Nodes.empty(); }

  const TapeNode &node(NodeId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes.size() &&
           "node id out of range");
    return Nodes[static_cast<size_t>(Id)];
  }
  TapeNode &node(NodeId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Nodes.size() &&
           "node id out of range");
    return Nodes[static_cast<size_t>(Id)];
  }
  std::span<const TapeNode> nodes() const { return Nodes; }

  /// Ids of all recorded input nodes, in registration order.
  const std::vector<NodeId> &inputs() const { return Inputs; }

  /// Resets every adjoint to [0, 0].
  void clearAdjoints();

  /// Adds \p Seed to the adjoint of \p Id (Eq. 7 allows y_(1) seeds).
  void seedAdjoint(NodeId Id, const Interval &Seed);

  /// Propagates adjoints from the last node towards the inputs (Eq. 8).
  /// Callers seed output adjoints first.
  void reverseSweep();

  /// Records that a kernel branched on an ambiguous interval comparison.
  /// The analysis result will be flagged invalid (paper Section 2.2).
  void noteDivergence(std::string Description);

  bool hasDiverged() const { return !Divergences.empty(); }
  const std::vector<std::string> &divergences() const { return Divergences; }

  /// The tape new IAValue operations record into, or nullptr when none is
  /// active (pure interval evaluation).  Thread-local.
  static Tape *active();

private:
  friend class ActiveTapeScope;
  static Tape *&activeSlot();

  std::vector<TapeNode> Nodes;
  std::vector<NodeId> Inputs;
  std::vector<std::string> Divergences;
};

/// RAII activation of a tape for the current thread.
///
/// \code
///   ActiveTapeScope Scope;
///   IAValue X = ...;            // operations record into Scope.tape()
///   Scope.tape().reverseSweep();
/// \endcode
class ActiveTapeScope {
public:
  ActiveTapeScope();
  ~ActiveTapeScope();
  ActiveTapeScope(const ActiveTapeScope &) = delete;
  ActiveTapeScope &operator=(const ActiveTapeScope &) = delete;

  Tape &tape() { return OwnedTape; }
  const Tape &tape() const { return OwnedTape; }

private:
  Tape OwnedTape;
  Tape *Previous;
};

} // namespace scorpio

#endif // SCORPIO_TAPE_TAPE_H
