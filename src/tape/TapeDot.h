//===- tape/TapeDot.h - Annotated DynDFG export (paper Figure 1a) ---------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz export of the raw recorded tape with the edge annotations of
/// paper Figure 1a: every edge u_i -> u_j carries the interval local
/// partial derivative d phi_j / d[u_i] computed during the forward
/// sweep; after a reverse sweep, nodes additionally show their interval
/// adjoints (Figure 1b).  This is the "visualize the significance for
/// different parts of the computation" facility of Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_TAPEDOT_H
#define SCORPIO_TAPE_TAPEDOT_H

#include "tape/Tape.h"

#include <map>
#include <ostream>
#include <string>

namespace scorpio {

/// Options for the annotated export.
struct TapeDotOptions {
  /// Show interval values in node labels.
  bool ShowValues = true;
  /// Show interval adjoints in node labels (meaningful after a
  /// reverseSweep()).
  bool ShowAdjoints = false;
  /// Show interval local partials as edge labels (Figure 1a).
  bool ShowPartials = true;
  /// Decimal digits for interval bounds.
  int Digits = 3;
  /// Per-node fill colors (Graphviz color names), e.g. verifier/linter
  /// findings highlighting offending nodes.  Takes precedence over the
  /// default Input shading.
  std::map<NodeId, std::string> FillColors;
};

/// Writes the full recorded tape as a digraph; \p Labels optionally maps
/// node ids to user-facing variable names.
void writeTapeDot(const Tape &T, std::ostream &OS,
                  const std::map<NodeId, std::string> &Labels = {},
                  const TapeDotOptions &Options = {});

} // namespace scorpio

#endif // SCORPIO_TAPE_TAPEDOT_H
