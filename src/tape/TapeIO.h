//===- tape/TapeIO.h - Versioned .stap tape serialization -----------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.stap` binary format: a recorded tape plus its registration
/// context (and optionally per-node significances) as a magic/version
/// header, a section table and one section per SoA chunk:
///
///   header   'STAP', format version, node count, section count,
///            FNV-1a64 checksum over all section payloads
///   OPS      per node: op kind, integer exponent
///   VALS     per node: value enclosure bounds
///   EDGE     per node: recorded argument ids + partial bounds
///   INPT     the tape's input node list
///   OUTP     registered output nodes
///   LABL     NodeId -> user name map (optional)
///   VARS     registered input/intermediate/output variables (optional)
///   DIVG     divergence diagnostics (optional)
///   SIG      per-node significances (optional)
///
/// Integers and doubles are stored in native endianness; `.stap` files
/// are an on-disk/IPC transport between scorpio processes on one
/// architecture, not an archival interchange format.
///
/// The loader is a trust boundary: a `.stap` file may come from another
/// process, an older build, or an attacker, so every read is
/// bounds-checked against the section table, the checksum is validated,
/// and the decoded node stream must pass `verify::verifyStructure`
/// before a Tape is constructed from it.  A file that fails any gate is
/// rejected with a structured `Status` — never undefined behavior, and
/// never a "repaired" tape.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_TAPEIO_H
#define SCORPIO_TAPE_TAPEIO_H

#include "support/Diag.h"
#include "tape/Tape.h"
#include "verify/TapeVerifier.h"

#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace scorpio {

/// The current .stap format version.
inline constexpr uint32_t StapVersion = 1;

/// Registration context of a tape: everything an Analysis knows beyond
/// the node stream itself.  Serialized alongside the tape so a reloaded
/// analysis reproduces the original's reports verbatim.
struct TapeRegistration {
  /// Registered output nodes, in registration order.
  std::vector<NodeId> Outputs;
  /// NodeId -> user-facing name for every registered variable.
  std::map<NodeId, std::string> Labels;
  /// (node, name) per registered input/intermediate/output, in
  /// registration order.
  std::vector<std::pair<NodeId, std::string>> InputVars;
  std::vector<std::pair<NodeId, std::string>> IntermediateVars;
  std::vector<std::pair<NodeId, std::string>> OutputVars;
};

/// Writes \p T with registration \p Reg (and, when non-empty, one
/// significance per node) to \p OS in .stap format.
diag::Status writeStap(std::ostream &OS, const Tape &T,
                       const TapeRegistration &Reg,
                       std::span<const double> Significance = {});

/// Raw-view writer: serializes an arbitrary (possibly defective)
/// verify::RawTape.  This is the mutation-test seam — the recording API
/// cannot construct a malformed tape, but the loader's acceptance gate
/// must be shown to reject one.  \p Reg.Outputs is ignored in favor of
/// \p Raw.Outputs.
diag::Status writeStap(std::ostream &OS, const verify::RawTape &Raw,
                       const TapeRegistration &Reg,
                       std::span<const double> Significance = {},
                       std::span<const std::string> Divergences = {});

/// Writes \p T to the file at \p Path.
diag::Status saveStap(const std::string &Path, const Tape &T,
                      const TapeRegistration &Reg,
                      std::span<const double> Significance = {});

/// A successfully loaded and verified .stap file.
struct LoadedTape {
  Tape T;
  TapeRegistration Reg;
  /// Per-node significances when the file carried a SIG section;
  /// empty otherwise.
  std::vector<double> Significance;
};

/// Parses, validates and verifies a .stap stream.  Returns the loaded
/// tape, or the Status naming the first gate the file failed (malformed
/// header, out-of-bounds section, checksum mismatch, or a
/// verify::verifyStructure structural error).
diag::Expected<LoadedTape> readStap(std::istream &IS);

/// Loads the .stap file at \p Path.
diag::Expected<LoadedTape> loadStap(const std::string &Path);

} // namespace scorpio

#endif // SCORPIO_TAPE_TAPEIO_H
