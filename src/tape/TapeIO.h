//===- tape/TapeIO.h - Versioned .stap tape serialization -----------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.stap` binary format: a recorded tape plus its registration
/// context (and optionally per-node significances) as a magic/version
/// header, a section table and one section per SoA chunk:
///
///   header   'STAP', format version, node count, section count,
///            FNV-1a64 checksum (see below for the per-version domain)
///   OPS      per node: op kind, integer exponent
///   VALS     per node: value enclosure bounds
///   EDGE     per node: recorded argument ids + partial bounds
///   INPT     the tape's input node list
///   OUTP     registered output nodes
///   META     shard identity + recording options + schema hash (v2)
///   LABL     NodeId -> user name map (optional)
///   VARS     registered input/intermediate/output variables (optional)
///   DIVG     divergence diagnostics (optional)
///   SIG      per-node significances (optional)
///
/// Two format versions are readable:
///
///  * **v1** (legacy): the flags word of every section-table entry is a
///    reserved must-be-zero pad, payloads are stored raw, and the header
///    checksum covers the concatenated section payloads in table order.
///  * **v2** (current): the flags word selects optional per-section
///    compression — bit 0 `varint` (delta/varint re-encoding, defined
///    for OPS and EDGE only), bit 1 `rle` (a generic literal-run/repeat
///    byte codec, any section; applied after varint when both are set).
///    Unknown flag bits are rejected.  The checksum domain is the
///    *entire file* with the checksum field itself taken as zero, so no
///    header or section-table byte is outside the hash.  v2 may carry a
///    META section (`TapeMeta`): shard name/index, the recording
///    `AnalysisOptions` (flattened) and a schema hash derived from the
///    wire-format strides and the op-kind count, so a merge can reject
///    shards recorded by an incompatible build.
///
/// Both versions are strict about layout: sections must be stored
/// contiguously in table order immediately after the table, and the
/// file must end exactly at the last payload byte — trailing garbage,
/// gaps and overlaps are rejected, which keeps every byte of the file
/// load-bearing (an offset flip on a zero-sized section cannot hide
/// from the checksum).
///
/// Integers and doubles are stored canonically in **little-endian**
/// byte order, whatever the writing host's native order — a `.stap`
/// written anywhere loads bit-identically everywhere, so heterogeneous
/// cluster nodes can exchange shards.  The reader additionally accepts
/// files from legacy native-order writers on big-endian machines: a
/// version field that only parses byte-swapped marks the file as
/// big-endian and every multi-byte field is swapped on read.  Such
/// legacy files must be uncompressed — the v2 codecs are defined over
/// canonical little-endian payloads, so a byte-swapped file carrying
/// compression flags is rejected, never mis-decoded.
///
/// The loader is a trust boundary: a `.stap` file may come from another
/// process, an older build, or an attacker, so every read is
/// bounds-checked against the section table, decompression output is
/// capped by the codec's worst-case expansion before any allocation,
/// the checksum is validated, and the decoded node stream must pass
/// `verify::verifyStructure` before a Tape is constructed from it.  A
/// file that fails any gate is rejected with a structured `Status` —
/// never undefined behavior, and never a "repaired" tape.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_TAPEIO_H
#define SCORPIO_TAPE_TAPEIO_H

#include "support/Diag.h"
#include "tape/Tape.h"
#include "verify/TapeVerifier.h"

#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace scorpio {

/// The current .stap format version.
inline constexpr uint32_t StapVersion = 2;
/// The oldest version readStap still accepts.
inline constexpr uint32_t StapOldestReadableVersion = 1;

/// v2 section flags (the v1 reserved pad reinterpreted).
inline constexpr uint32_t StapSectionVarint = 1u; ///< OPS/EDGE delta+varint
inline constexpr uint32_t StapSectionRle = 2u;    ///< generic RLE byte codec
inline constexpr uint32_t StapSectionFlagMask =
    StapSectionVarint | StapSectionRle;

/// Hash of the wire schema this build writes and expects: the section
/// strides, the NodeId width and the op-kind count.  Two builds with
/// different op sets (or a future node layout change) produce different
/// hashes, so a merge refuses their shards instead of mis-decoding them.
uint64_t stapSchemaHash();

/// Shard identity and recording context carried by a v2 META section.
/// The analysis options are flattened to plain fields (this header is
/// included by core/Analysis.h, so it cannot name AnalysisOptions);
/// core/ParallelAnalysis.h provides the conversions.
struct TapeMeta {
  /// stapSchemaHash() of the writing build.  readStap rejects files
  /// whose META hash differs from the running build's.
  uint64_t SchemaHash = 0;
  /// Shard registration index within its ParallelAnalysis run.
  uint64_t ShardIndex = 0;
  /// User-facing shard name ("tile_2_1"); may be empty.
  std::string ShardName;
  /// True when the option fields below are meaningful.
  bool HasOptions = false;
  /// Flattened AnalysisOptions of the recording process.
  uint8_t OutputMode = 0;       ///< AnalysisOptions::OutputMode
  uint8_t Metric = 0;           ///< AnalysisOptions::Metric
  uint32_t BatchWidth = 8;
  bool Simplify = true;
  bool BuildGraph = true;
  /// core::VerifyLevel as its wire byte (0 = Off, 1 = Structural,
  /// 2 = AbsInt).  Was a bool before the AbsInt level existed; the wire
  /// layout is unchanged (always one byte) and old readers reject
  /// values above the levels they know.
  uint8_t VerifyTape = 0;
  double Delta = 1e-3;
  double SignificanceCap = 1e300;
};

/// Registration context of a tape: everything an Analysis knows beyond
/// the node stream itself.  Serialized alongside the tape so a reloaded
/// analysis reproduces the original's reports verbatim.
struct TapeRegistration {
  /// Registered output nodes, in registration order.
  std::vector<NodeId> Outputs;
  /// NodeId -> user-facing name for every registered variable.
  std::map<NodeId, std::string> Labels;
  /// (node, name) per registered input/intermediate/output, in
  /// registration order.
  std::vector<std::pair<NodeId, std::string>> InputVars;
  std::vector<std::pair<NodeId, std::string>> IntermediateVars;
  std::vector<std::pair<NodeId, std::string>> OutputVars;
};

/// Writer knobs.  The defaults produce an uncompressed v2 file; set
/// Version = 1 to emit the legacy container byte-identically to the v1
/// writer (compression and META are v2-only and rejected under v1).
struct StapWriteOptions {
  uint32_t Version = StapVersion;
  /// Per-section compression: each section is stored in whichever
  /// admissible encoding (raw / varint / rle / varint+rle) is smallest,
  /// chosen deterministically.
  bool Compress = false;
};

/// Writes \p T with registration \p Reg (and, when non-empty, one
/// significance per node) to \p OS in .stap format.  \p Meta, when
/// non-null, is embedded as the META section (its SchemaHash field is
/// overwritten with the running build's hash).
diag::Status writeStap(std::ostream &OS, const Tape &T,
                       const TapeRegistration &Reg,
                       std::span<const double> Significance = {},
                       const StapWriteOptions &Options = {},
                       const TapeMeta *Meta = nullptr);

/// Raw-view writer: serializes an arbitrary (possibly defective)
/// verify::RawTape.  This is the mutation-test seam — the recording API
/// cannot construct a malformed tape, but the loader's acceptance gate
/// must be shown to reject one.  \p Reg.Outputs is ignored in favor of
/// \p Raw.Outputs.
diag::Status writeStap(std::ostream &OS, const verify::RawTape &Raw,
                       const TapeRegistration &Reg,
                       std::span<const double> Significance = {},
                       std::span<const std::string> Divergences = {},
                       const StapWriteOptions &Options = {},
                       const TapeMeta *Meta = nullptr);

/// Writes \p T to the file at \p Path.  The stream is flushed and
/// closed before returning: a full disk or failing sink yields an error
/// Status, never a silently truncated file.
diag::Status saveStap(const std::string &Path, const Tape &T,
                      const TapeRegistration &Reg,
                      std::span<const double> Significance = {},
                      const StapWriteOptions &Options = {},
                      const TapeMeta *Meta = nullptr);

/// A successfully loaded and verified .stap file.
struct LoadedTape {
  Tape T;
  TapeRegistration Reg;
  /// Per-node significances when the file carried a SIG section;
  /// empty otherwise.
  std::vector<double> Significance;
  /// Shard/transport metadata when the file carried a META section.
  std::optional<TapeMeta> Meta;
  /// The format version of the file this tape was decoded from.
  uint32_t Version = 0;
};

/// Parses, validates and verifies a .stap stream.  Returns the loaded
/// tape, or the Status naming the first gate the file failed (malformed
/// header, out-of-bounds section, checksum mismatch, codec violation,
/// schema mismatch, or a verify::verifyStructure structural error).
diag::Expected<LoadedTape> readStap(std::istream &IS);

/// Loads the .stap file at \p Path.
diag::Expected<LoadedTape> loadStap(const std::string &Path);

} // namespace scorpio

#endif // SCORPIO_TAPE_TAPEIO_H
