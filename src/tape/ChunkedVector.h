//===- tape/ChunkedVector.h - Stable-address chunked arena ----------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only array stored as fixed-size blocks.  Unlike std::vector,
/// growth never relocates existing elements: recording a multi-million
/// node tape performs no reallocation-induced copies, element addresses
/// are stable for the lifetime of the container, and reserve() is a pure
/// block-preallocation hint.  Random access is one shift + mask + two
/// dependent loads, which the reverse sweep amortizes by streaming
/// blocks.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_TAPE_CHUNKEDVECTOR_H
#define SCORPIO_TAPE_CHUNKEDVECTOR_H

#include "simd/AlignedAlloc.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

namespace scorpio {

/// Append-only chunked storage with stable element addresses.
/// \tparam T element type (default-constructible).
/// \tparam BlockShift log2 of the block size in elements.
template <typename T, unsigned BlockShift = 12> class ChunkedVector {
public:
  static constexpr size_t BlockSize = size_t{1} << BlockShift;
  static constexpr size_t IndexMask = BlockSize - 1;

  ChunkedVector() = default;
  ChunkedVector(ChunkedVector &&) = default;
  ChunkedVector &operator=(ChunkedVector &&) = default;
  ChunkedVector(const ChunkedVector &) = delete;
  ChunkedVector &operator=(const ChunkedVector &) = delete;

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](size_t I) {
    assert(I < Count && "chunked index out of range");
    return Blocks[I >> BlockShift][I & IndexMask];
  }
  const T &operator[](size_t I) const {
    assert(I < Count && "chunked index out of range");
    return Blocks[I >> BlockShift][I & IndexMask];
  }

  T &back() {
    assert(Count > 0 && "back() on empty container");
    return (*this)[Count - 1];
  }

  /// Appends a copy of \p V; never moves existing elements.
  T &push_back(const T &V) {
    T &Slot = appendSlot();
    Slot = V;
    return Slot;
  }
  T &push_back(T &&V) {
    T &Slot = appendSlot();
    Slot = std::move(V);
    return Slot;
  }

  /// Preallocates blocks for \p N total elements (hint; never shrinks).
  void reserve(size_t N) {
    const size_t NeedBlocks = (N + BlockSize - 1) >> BlockShift;
    while (Blocks.size() < NeedBlocks)
      Blocks.push_back(simd::allocateAlignedBlock<T>(BlockSize));
  }

  void clear() {
    Blocks.clear();
    Count = 0;
  }

  /// Number of elements currently resident in block \p B (the last block
  /// may be partially filled).
  size_t blockFill(size_t B) const {
    const size_t Begin = B << BlockShift;
    assert(Begin < Count && "block beyond end");
    return std::min(BlockSize, Count - Begin);
  }

  /// Pointer to the first element of block \p B, for streaming loops.
  /// Blocks are cache-line aligned so a vectorized run over a block
  /// starts on an aligned boundary.
  T *blockData(size_t B) {
    assert(simd::isCacheLineAligned(Blocks[B].get()) &&
           "chunk block lost cache-line alignment");
    return Blocks[B].get();
  }
  const T *blockData(size_t B) const {
    assert(simd::isCacheLineAligned(Blocks[B].get()) &&
           "chunk block lost cache-line alignment");
    return Blocks[B].get();
  }

  /// Number of blocks that contain at least one element.
  size_t numFilledBlocks() const {
    return (Count + BlockSize - 1) >> BlockShift;
  }

private:
  T &appendSlot() {
    if ((Count >> BlockShift) == Blocks.size())
      Blocks.push_back(simd::allocateAlignedBlock<T>(BlockSize));
    T &Slot = Blocks[Count >> BlockShift][Count & IndexMask];
    ++Count;
    return Slot;
  }

  std::vector<simd::AlignedBlock<T>> Blocks;
  size_t Count = 0;
};

} // namespace scorpio

#endif // SCORPIO_TAPE_CHUNKEDVECTOR_H
