//===- tape/Tape.cpp - DynDFG recording tape implementation --------------===//

#include "tape/Tape.h"

using namespace scorpio;

const char *scorpio::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Input:
    return "input";
  case OpKind::Add:
    return "add";
  case OpKind::Sub:
    return "sub";
  case OpKind::Mul:
    return "mul";
  case OpKind::Div:
    return "div";
  case OpKind::Neg:
    return "neg";
  case OpKind::Sin:
    return "sin";
  case OpKind::Cos:
    return "cos";
  case OpKind::Tan:
    return "tan";
  case OpKind::Exp:
    return "exp";
  case OpKind::Log:
    return "log";
  case OpKind::Sqrt:
    return "sqrt";
  case OpKind::Sqr:
    return "sqr";
  case OpKind::PowInt:
    return "powi";
  case OpKind::Pow:
    return "pow";
  case OpKind::Fabs:
    return "fabs";
  case OpKind::Erf:
    return "erf";
  case OpKind::Atan:
    return "atan";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Round:
    return "round";
  case OpKind::TanOverX:
    return "tanoverx";
  }
  assert(false && "unknown op kind");
  return "?";
}

bool scorpio::isAccumulativeOp(OpKind K) {
  return K == OpKind::Add || K == OpKind::Mul || K == OpKind::Min ||
         K == OpKind::Max;
}

NodeId Tape::recordInput(const Interval &V) {
  TapeNode N;
  N.Value = V;
  N.Kind = OpKind::Input;
  N.NumArgs = 0;
  const NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(N);
  Inputs.push_back(Id);
  return Id;
}

NodeId Tape::recordUnary(OpKind K, const Interval &V, NodeId Arg,
                         const Interval &Partial, int32_t AuxInt) {
  assert(Arg != InvalidNodeId && "unary op needs an active argument");
  assert(Arg < static_cast<NodeId>(Nodes.size()) && "forward reference");
  TapeNode N;
  N.Value = V;
  N.Kind = K;
  N.NumArgs = 1;
  N.Args[0] = Arg;
  N.Partials[0] = Partial;
  N.AuxInt = AuxInt;
  Nodes.push_back(N);
  return static_cast<NodeId>(Nodes.size() - 1);
}

NodeId Tape::recordBinary(OpKind K, const Interval &V, NodeId Arg0,
                          const Interval &Partial0, NodeId Arg1,
                          const Interval &Partial1) {
  assert((Arg0 != InvalidNodeId || Arg1 != InvalidNodeId) &&
         "binary op needs at least one active argument");
  TapeNode N;
  N.Value = V;
  N.Kind = K;
  N.NumArgs = 0;
  if (Arg0 != InvalidNodeId) {
    assert(Arg0 < static_cast<NodeId>(Nodes.size()) && "forward reference");
    N.Args[N.NumArgs] = Arg0;
    N.Partials[N.NumArgs] = Partial0;
    ++N.NumArgs;
  }
  if (Arg1 != InvalidNodeId) {
    assert(Arg1 < static_cast<NodeId>(Nodes.size()) && "forward reference");
    N.Args[N.NumArgs] = Arg1;
    N.Partials[N.NumArgs] = Partial1;
    ++N.NumArgs;
  }
  Nodes.push_back(N);
  return static_cast<NodeId>(Nodes.size() - 1);
}

void Tape::clearAdjoints() {
  for (TapeNode &N : Nodes)
    N.Adjoint = Interval(0.0);
}

void Tape::seedAdjoint(NodeId Id, const Interval &Seed) {
  node(Id).Adjoint += Seed;
}

void Tape::reverseSweep() {
  // Eq. 8: u_(1)i = sum over consumers j of dphi_j/du_i * u_(1)j,
  // evaluated by walking the tape backwards and scattering each node's
  // adjoint to its arguments.
  for (size_t I = Nodes.size(); I-- > 0;) {
    const TapeNode &N = Nodes[I];
    if (N.Adjoint == Interval(0.0))
      continue;
    for (uint8_t A = 0; A != N.NumArgs; ++A)
      Nodes[static_cast<size_t>(N.Args[A])].Adjoint +=
          N.Partials[A] * N.Adjoint;
  }
}

void Tape::noteDivergence(std::string Description) {
  Divergences.push_back(std::move(Description));
}

Tape *&Tape::activeSlot() {
  thread_local Tape *Active = nullptr;
  return Active;
}

Tape *Tape::active() { return activeSlot(); }

ActiveTapeScope::ActiveTapeScope() : Previous(Tape::activeSlot()) {
  Tape::activeSlot() = &OwnedTape;
}

ActiveTapeScope::~ActiveTapeScope() { Tape::activeSlot() = Previous; }
