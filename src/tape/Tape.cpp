//===- tape/Tape.cpp - DynDFG recording tape implementation --------------===//

#include "tape/Tape.h"

#include "simd/IntervalLanes.h"
#include "simd/IntervalOps.h"

#include <algorithm>
#include <atomic>

using namespace scorpio;

const char *scorpio::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Input:
    return "input";
  case OpKind::Add:
    return "add";
  case OpKind::Sub:
    return "sub";
  case OpKind::Mul:
    return "mul";
  case OpKind::Div:
    return "div";
  case OpKind::Neg:
    return "neg";
  case OpKind::Sin:
    return "sin";
  case OpKind::Cos:
    return "cos";
  case OpKind::Tan:
    return "tan";
  case OpKind::Exp:
    return "exp";
  case OpKind::Log:
    return "log";
  case OpKind::Sqrt:
    return "sqrt";
  case OpKind::Sqr:
    return "sqr";
  case OpKind::PowInt:
    return "powi";
  case OpKind::Pow:
    return "pow";
  case OpKind::Fabs:
    return "fabs";
  case OpKind::Erf:
    return "erf";
  case OpKind::Atan:
    return "atan";
  case OpKind::Min:
    return "min";
  case OpKind::Max:
    return "max";
  case OpKind::Round:
    return "round";
  case OpKind::TanOverX:
    return "tanoverx";
  }
  assert(false && "unknown op kind");
  return "?";
}

bool scorpio::isAccumulativeOp(OpKind K) {
  return K == OpKind::Add || K == OpKind::Mul || K == OpKind::Min ||
         K == OpKind::Max;
}

unsigned scorpio::opArity(OpKind K) {
  switch (K) {
  case OpKind::Input:
    return 0;
  case OpKind::Neg:
  case OpKind::Sin:
  case OpKind::Cos:
  case OpKind::Tan:
  case OpKind::Exp:
  case OpKind::Log:
  case OpKind::Sqrt:
  case OpKind::Sqr:
  case OpKind::PowInt:
  case OpKind::Fabs:
  case OpKind::Erf:
  case OpKind::Atan:
  case OpKind::Round:
  case OpKind::TanOverX:
    return 1;
  case OpKind::Add:
  case OpKind::Sub:
  case OpKind::Mul:
  case OpKind::Div:
  case OpKind::Pow:
  case OpKind::Min:
  case OpKind::Max:
    return 2;
  }
  assert(false && "unknown op kind");
  return 0;
}

void Tape::reserve(size_t ExpectedNodes) {
  Values.reserve(ExpectedNodes);
  Ops.reserve(ExpectedNodes);
  Edges.reserve(ExpectedNodes);
  Adjoints.reserve(ExpectedNodes);
}

NodeId Tape::recordInput(const Interval &V) {
  const NodeId Id = static_cast<NodeId>(Values.size());
  Values.push_back(V);
  Ops.push_back(TapeOp{OpKind::Input, 0});
  Edges.push_back(TapeEdges{});
  Adjoints.push_back(Interval(0.0));
  Inputs.push_back(Id);
  return Id;
}

NodeId Tape::recordUnary(OpKind K, const Interval &V, NodeId Arg,
                         const Interval &Partial, int32_t AuxInt) {
  const NodeId Id = static_cast<NodeId>(Values.size());
  // IAValue overloads always pass tape-generated ids, but the recording
  // API is public (tests, tooling): an invalid or forward-referencing
  // argument is live-checked and demoted to a passive operand (the node
  // is still recorded, as a constant leaf) instead of corrupting the
  // edge stream in Release builds.
  const bool ArgOk =
      SCORPIO_CHECK(Arg != InvalidNodeId && Arg < Id,
                    diag::ErrC::InvalidArgument,
                    "Tape::recordUnary: invalid or forward argument id");
  Values.push_back(V);
  Ops.push_back(TapeOp{K, AuxInt});
  TapeEdges &E = Edges.push_back(TapeEdges{});
  if (ArgOk) {
    E.NumArgs = 1;
    E.Args[0] = Arg;
    E.Partials[0] = Partial;
  }
  Adjoints.push_back(Interval(0.0));
  return Id;
}

NodeId Tape::recordBinary(OpKind K, const Interval &V, NodeId Arg0,
                          const Interval &Partial0, NodeId Arg1,
                          const Interval &Partial1) {
  const NodeId Id = static_cast<NodeId>(Values.size());
  // Either argument may legitimately be passive (InvalidNodeId); an id
  // that is present but out of range / forward-referencing is demoted to
  // passive with a diagnostic, and a node whose arguments all turn out
  // passive is additionally flagged (callers should have recorded a
  // constant, not an operation).
  auto ActiveOk = [&](NodeId Arg) {
    if (Arg == InvalidNodeId)
      return false;
    return SCORPIO_CHECK(Arg < Id && Arg >= 0, diag::ErrC::InvalidArgument,
                         "Tape::recordBinary: invalid or forward argument id");
  };
  const bool Use0 = ActiveOk(Arg0);
  const bool Use1 = ActiveOk(Arg1);
  (void)SCORPIO_CHECK(Arg0 != InvalidNodeId || Arg1 != InvalidNodeId,
                      diag::ErrC::InvalidArgument,
                      "Tape::recordBinary: binary op needs at least one "
                      "active argument");
  Values.push_back(V);
  Ops.push_back(TapeOp{K, 0});
  TapeEdges &E = Edges.push_back(TapeEdges{});
  if (Use0) {
    E.Args[E.NumArgs] = Arg0;
    E.Partials[E.NumArgs] = Partial0;
    ++E.NumArgs;
  }
  if (Use1) {
    E.Args[E.NumArgs] = Arg1;
    E.Partials[E.NumArgs] = Partial1;
    ++E.NumArgs;
  }
  Adjoints.push_back(Interval(0.0));
  return Id;
}

void Tape::clearAdjoints() {
  for (size_t B = 0, NB = Adjoints.numFilledBlocks(); B != NB; ++B)
    simd::zeroFillRun(Adjoints.blockData(B), Adjoints.blockFill(B));
}

void Tape::seedAdjoint(NodeId Id, const Interval &Seed) {
  SCORPIO_REQUIRE(isValidNode(Id), diag::ErrC::OutOfRange,
                  "Tape::seedAdjoint: node id out of range");
  Adjoints[static_cast<size_t>(Id)] += Seed;
}

namespace {
/// See Tape::totalReverseSweeps().
std::atomic<uint64_t> ReverseSweepCounter{0};
} // namespace

uint64_t Tape::totalReverseSweeps() {
  return ReverseSweepCounter.load(std::memory_order_relaxed);
}

void Tape::reverseSweep(SweepBackend Backend) {
  ReverseSweepCounter.fetch_add(1, std::memory_order_relaxed);
  // Eq. 8: u_(1)i = sum over consumers j of dphi_j/du_i * u_(1)j,
  // evaluated by walking the tape backwards and scattering each node's
  // adjoint to its arguments.  Nodes with a [0,0] adjoint reach nobody
  // (interval products with an exact-zero factor are exactly [0,0]), so
  // they are skipped without widening the result.
  const Interval Zero(0.0);
  if (Backend == SweepBackend::Scalar) {
    // The textbook per-edge operator loop, kept verbatim as the
    // reference side of the bit-identity cross-checks.
    for (size_t I = Values.size(); I-- > 0;) {
      const Interval &A = Adjoints[I];
      if (A == Zero)
        continue;
      const TapeEdges &E = Edges[I];
      for (uint8_t K = 0; K != E.NumArgs; ++K)
        Adjoints[static_cast<size_t>(E.Args[K])] += E.Partials[K] * A;
    }
    return;
  }
  // Auto: identical scatter order, with two bit-exact shortcuts.  An
  // exact-zero partial contributes the exact-zero product, and adding
  // [0, 0] is the identity — skip the edge.  A point partial (every
  // +/- edge) needs only two of operator*'s four corner products, and
  // a one-signed point factor is monotone, so the bounds arrive
  // pre-ordered; both branches reproduce operator*'s result bit for
  // bit (the same classification the batched sweep amortizes over its
  // lanes).
  for (size_t I = Values.size(); I-- > 0;) {
    const Interval &A = Adjoints[I];
    if (A == Zero)
      continue;
    const TapeEdges &E = Edges[I];
    for (uint8_t K = 0; K != E.NumArgs; ++K) {
      const Interval P = E.Partials[K];
      if (P == Zero)
        continue;
      Interval &D = Adjoints[static_cast<size_t>(E.Args[K])];
      if (P.isPoint()) {
        const double Pv = P.lower();
        const double X1 = detail::mulBound(Pv, A.lower());
        const double X2 = detail::mulBound(Pv, A.upper());
        D += Pv > 0.0 ? detail::outward(X1, X2, 1)
                      : detail::outward(X2, X1, 1);
      } else {
        D += P * A;
      }
    }
  }
}

namespace {

/// The vectorized prefix of one lane scatter: applies partial \p P of
/// one (node, argument) edge to lanes [0, retval) of destination row
/// \p D, simd::NativeLanes lanes per step.  Shape selects the same
/// three product forms the scalar loop classifies into: 0 = positive
/// point partial, 1 = negative point partial, 2 = general interval
/// partial.  Returns the number of lanes consumed (a multiple of the
/// vector width; the caller's scalar loop finishes the tail).
///
/// Bit-identity with the scalar lanes is compositional: mulPoint/mulIA
/// reproduce the products, the exact-zero-adjoint skip becomes a
/// select to [0, 0] (which addIA's B-zero identity turns back into
/// "destination unchanged"), and addIA reproduces operator+.
template <int Shape>
inline unsigned scatterLanesSimd(const Interval &P, const Interval *Row,
                                 Interval *D, unsigned W) {
  if constexpr (simd::NativeLanes <= 1) {
    (void)P;
    (void)Row;
    (void)D;
    (void)W;
    return 0;
  } else {
    constexpr unsigned VW = simd::NativeLanes;
    using IL = simd::IntervalLanes<VW>;
    const simd::DoubleLanes<VW> Pv =
        simd::DoubleLanes<VW>::broadcast(P.lower());
    const IL PL = IL::broadcast(P);
    const IL ZeroIA = IL::zero();
    unsigned L = 0;
    for (; L + VW <= W; L += VW) {
      const IL A = simd::loadIntervals<VW>(Row + L);
      const simd::LaneMask<VW> AZ = A.isZero();
      // A whole vector of zero adjoints reaches nobody — the common
      // case in the upper tape region, before the seeds fan out.
      if (AZ.all())
        continue;
      IL C;
      if constexpr (Shape == 0)
        C = simd::mulPoint<true>(Pv, A);
      else if constexpr (Shape == 1)
        C = simd::mulPoint<false>(Pv, A);
      else
        C = simd::mulIA(PL, A);
      // Zero-adjoint lanes contribute exactly [0, 0] (mulIA already
      // guarantees this; the point forms outward-round their zero
      // products, so force them back).
      if constexpr (Shape != 2)
        C = IL::select(AZ, ZeroIA, C);
      const IL Dv = simd::loadIntervals<VW>(D + L);
      simd::storeIntervals<VW>(D + L, simd::addIA(Dv, C));
    }
    return L;
  }
}

} // namespace

void Tape::reverseSweepBatch(
    std::span<const std::pair<NodeId, Interval>> Seeds, BatchAdjoints &Out,
    SweepBackend Backend) const {
  ReverseSweepCounter.fetch_add(1, std::memory_order_relaxed);
  const unsigned W = static_cast<unsigned>(Seeds.size());
  Out.resize(Values.size(), W);
  if (W == 0 || Values.empty())
    return;
  for (unsigned L = 0; L != W; ++L) {
    // An out-of-range seed node leaves its lane all-zero (a sweep that
    // was never seeded) instead of scribbling outside the matrix.
    if (!SCORPIO_CHECK(isValidNode(Seeds[L].first), diag::ErrC::OutOfRange,
                       "Tape::reverseSweepBatch: seed node id out of range"))
      continue;
    Out.at(Seeds[L].first, L) += Seeds[L].second;
  }

  // One backward pass over the edge stream, propagating all W lanes of a
  // node before moving to the next node.  Per lane this performs exactly
  // the sequence of interval operations reverseSweep() would, so each
  // lane's result is bit-identical to a dedicated single-seed sweep:
  // within a node, lane L's contributions to the arguments happen in
  // argument order (which matters when both arguments alias, as in x*x),
  // and contributions to a slot arrive in descending consumer order.
  const Interval Zero(0.0);
  // With the Auto backend each lane loop runs a vectorized prefix
  // (NativeLanes lanes per step) and finishes with the scalar tail; the
  // Scalar backend — the E008 cross-check reference — starts every loop
  // at lane 0 so only the original scalar code runs.
  const bool UseSimd = Backend == SweepBackend::Auto && simd::NativeLanes > 1;
  for (size_t I = Values.size(); I-- > 0;) {
    const TapeEdges &E = Edges[I];
    if (E.NumArgs == 0)
      continue;
    const Interval *Row = Out.row(static_cast<NodeId>(I));
    // Per argument, the destination row, the partial, and the partial's
    // shape are loop-invariant; classifying them once per node and
    // amortizing over the W lanes is where the batch saves over W
    // separate sweeps.  Iterating arguments outside lanes keeps the
    // per-slot accumulation order of the scalar sweep (lanes never share
    // a slot, and an aliased x*x argument pair still applies partial 0
    // before partial 1 to every lane's slot).
    for (uint8_t K = 0; K != E.NumArgs; ++K) {
      const Interval P = E.Partials[K];
      // An exact-zero partial contributes the exact-zero product to
      // every lane, and adding [0, 0] is the identity — skip the node.
      if (P == Zero)
        continue;
      Interval *const D = Out.row(E.Args[K]);
      if (P.isPoint()) {
        // Point partial (every +/- edge and any differentiation w.r.t.
        // an operand of a constant): only two of operator*'s four bound
        // products are distinct, and multiplying by a one-signed point
        // is monotone, so the product bounds arrive already ordered.
        // Both branches produce bit-exactly operator*'s result.
        const double Pv = P.lower();
        if (Pv > 0.0) {
          for (unsigned L = UseSimd ? scatterLanesSimd<0>(P, Row, D, W) : 0;
               L != W; ++L) {
            const Interval A = Row[L];
            if (A == Zero)
              continue;
            const double X1 = detail::mulBound(Pv, A.lower());
            const double X2 = detail::mulBound(Pv, A.upper());
            D[L] += detail::outward(X1, X2, 1);
          }
        } else {
          for (unsigned L = UseSimd ? scatterLanesSimd<1>(P, Row, D, W) : 0;
               L != W; ++L) {
            const Interval A = Row[L];
            if (A == Zero)
              continue;
            const double X1 = detail::mulBound(Pv, A.lower());
            const double X2 = detail::mulBound(Pv, A.upper());
            D[L] += detail::outward(X2, X1, 1);
          }
        }
      } else {
        for (unsigned L = UseSimd ? scatterLanesSimd<2>(P, Row, D, W) : 0;
             L != W; ++L) {
          const Interval A = Row[L];
          if (A == Zero)
            continue;
          D[L] += P * A;
        }
      }
    }
  }
}

void Tape::reverseSweepBatch(std::span<const NodeId> SeedNodes,
                             BatchAdjoints &Out, SweepBackend Backend) const {
  std::vector<std::pair<NodeId, Interval>> Seeds;
  Seeds.reserve(SeedNodes.size());
  for (NodeId Id : SeedNodes)
    Seeds.emplace_back(Id, Interval(1.0));
  reverseSweepBatch(std::span<const std::pair<NodeId, Interval>>(Seeds), Out,
                    Backend);
}

void Tape::noteDivergence(std::string Description) {
  Divergences.push_back(std::move(Description));
}

Tape *&Tape::activeSlot() {
  thread_local Tape *Active = nullptr;
  return Active;
}

Tape *Tape::active() { return activeSlot(); }

ActiveTapeScope::ActiveTapeScope() : Previous(Tape::activeSlot()) {
  Tape::activeSlot() = &OwnedTape;
}

ActiveTapeScope::~ActiveTapeScope() { Tape::activeSlot() = Previous; }
