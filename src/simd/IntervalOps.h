//===- simd/IntervalOps.h - Interval kernels over contiguous runs ---------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward-value interval kernels over contiguous Interval runs (the
/// shape ChunkedVector blocks and BatchAdjoints rows have): a
/// NativeLanes-wide vector body plus a scalar tail calling the exact
/// scalar operator, so every element's result is bit-identical to a
/// plain scalar loop regardless of how the run length divides the lane
/// width.  With SCORPIO_SIMD_DISABLED the vector body compiles away
/// and only the scalar loop remains.
///
/// Input and output runs may alias only exactly (Out == A or Out == B);
/// partial overlap is undefined, as with std::transform.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SIMD_INTERVALOPS_H
#define SCORPIO_SIMD_INTERVALOPS_H

#include "simd/IntervalLanes.h"

#include <cstddef>

namespace scorpio {
namespace simd {

/// Out[i] = A[i] + B[i] (scorpio::operator+, outward-rounded).
inline void addRun(const Interval *A, const Interval *B, Interval *Out,
                   std::size_t N) {
  std::size_t I = 0;
  if constexpr (NativeLanes > 1) {
    constexpr unsigned W = NativeLanes;
    for (; I + W <= N; I += W)
      storeIntervals<W>(Out + I, addIA(loadIntervals<W>(A + I),
                                       loadIntervals<W>(B + I)));
  }
  for (; I != N; ++I)
    Out[I] = A[I] + B[I];
}

/// Out[i] = A[i] * B[i] (scorpio::operator*, outward-rounded).
inline void mulRun(const Interval *A, const Interval *B, Interval *Out,
                   std::size_t N) {
  std::size_t I = 0;
  if constexpr (NativeLanes > 1) {
    constexpr unsigned W = NativeLanes;
    for (; I + W <= N; I += W)
      storeIntervals<W>(Out + I, mulIA(loadIntervals<W>(A + I),
                                       loadIntervals<W>(B + I)));
  }
  for (; I != N; ++I)
    Out[I] = A[I] * B[I];
}

/// Out[i] = hull(A[i], B[i]).
inline void hullRun(const Interval *A, const Interval *B, Interval *Out,
                    std::size_t N) {
  std::size_t I = 0;
  if constexpr (NativeLanes > 1) {
    constexpr unsigned W = NativeLanes;
    for (; I + W <= N; I += W)
      storeIntervals<W>(Out + I, hullIA(loadIntervals<W>(A + I),
                                        loadIntervals<W>(B + I)));
  }
  for (; I != N; ++I)
    Out[I] = hull(A[I], B[I]);
}

/// Out[i] = A[i] widened outward by one ulp per side — the directed-
/// rounding primitive every interval operation ends with.
inline void outwardRun(const Interval *A, Interval *Out, std::size_t N) {
  std::size_t I = 0;
  if constexpr (NativeLanes > 1) {
    constexpr unsigned W = NativeLanes;
    for (; I + W <= N; I += W)
      storeIntervals<W>(Out + I, outward1(loadIntervals<W>(A + I)));
  }
  for (; I != N; ++I)
    Out[I] = scorpio::detail::outward(A[I].lower(), A[I].upper(), 1);
}

/// Out[i] = [0, 0] — the adjoint-clearing kernel.
inline void zeroFillRun(Interval *Out, std::size_t N) {
  std::size_t I = 0;
  if constexpr (NativeLanes > 1) {
    constexpr unsigned W = NativeLanes;
    const IntervalLanes<W> Z = IntervalLanes<W>::zero();
    for (; I + W <= N; I += W)
      storeIntervals<W>(Out + I, Z);
  }
  const Interval Zero(0.0);
  for (; I != N; ++I)
    Out[I] = Zero;
}

} // namespace simd
} // namespace scorpio

#endif // SCORPIO_SIMD_INTERVALOPS_H
