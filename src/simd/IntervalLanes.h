//===- simd/IntervalLanes.h - Lane-parallel interval arithmetic -----------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// W independent intervals processed vertically: a DoubleLanes<W> of
/// lower bounds and one of upper bounds.  Every operation here is the
/// branch-free reformulation of the corresponding scalar operator in
/// interval/Interval.h, with the scalar early-exits (exact-zero operand
/// identities) turned into lane selects, and the outward rounding
/// turned into the integer stepDown/stepUp lane ops:
///
///   * addIA     == scorpio::operator+  (zero-addend identities)
///   * mulIA     == scorpio::operator*  (zero-factor exactness,
///                  mulBound's 0 * inf == 0, std::min/max ordering)
///   * mulPoint  == the point-partial shortcut of the adjoint sweep
///                  (two mulBound products, outward by 1 ulp)
///   * hullIA    == scorpio::hull
///
/// Bit-identity with the scalar path is the contract, not an
/// aspiration: the E008 verifier rule and tests/simd_sweep_test.cpp
/// compare adjoints bit-for-bit between this path and the scalar one.
///
/// Memory layout: loadIntervals/storeIntervals move between an
/// interleaved `Interval[]` array ([lo0 hi0 lo1 hi1 ...]) and the
/// split lane registers.  Backends may permute which array element
/// lands in which lane (the AVX2 unpack pair uses order 0,2,1,3) —
/// legal because every operation is lane-wise and load/store use the
/// same permutation, so array slot i always round-trips to array slot
/// i.  Code must not mix lane indices with array indices.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SIMD_INTERVALLANES_H
#define SCORPIO_SIMD_INTERVALLANES_H

#include "interval/Interval.h"
#include "simd/DoubleLanes.h"

namespace scorpio {
namespace simd {

static_assert(sizeof(Interval) == 2 * sizeof(double),
              "Interval must be exactly {lower, upper}");

/// W intervals, bounds split across two lane registers.
template <unsigned W> struct IntervalLanes {
  DoubleLanes<W> Lo, Hi;

  static IntervalLanes zero() {
    return {DoubleLanes<W>::zero(), DoubleLanes<W>::zero()};
  }
  /// All lanes = [X.lower(), X.upper()].
  static IntervalLanes broadcast(const Interval &X) {
    return {DoubleLanes<W>::broadcast(X.lower()),
            DoubleLanes<W>::broadcast(X.upper())};
  }

  /// Lanes that are exactly [0, 0] (the scalar operators' identity /
  /// exactness special case).
  LaneMask<W> isZero() const {
    const DoubleLanes<W> Z = DoubleLanes<W>::zero();
    return Lo.eq(Z) & Hi.eq(Z);
  }

  static IntervalLanes select(const LaneMask<W> &Mask, const IntervalLanes &A,
                              const IntervalLanes &B) {
    return {DoubleLanes<W>::select(Mask, A.Lo, B.Lo),
            DoubleLanes<W>::select(Mask, A.Hi, B.Hi)};
  }
};

/// Loads W consecutive intervals from an interleaved array.
template <unsigned W>
inline IntervalLanes<W> loadIntervals(const Interval *P) {
  IntervalLanes<W> R;
  for (unsigned I = 0; I != W; ++I) {
    R.Lo.setLane(I, P[I].lower());
    R.Hi.setLane(I, P[I].upper());
  }
  return R;
}

/// Stores W lanes back to an interleaved array.  The lanes must hold
/// valid interval bounds (lo <= hi, no NaN) — they are written through
/// the object representation, bypassing the checked constructor, which
/// is exactly what the hot path needs (the values being stored are
/// results of containment-preserving operations).
template <unsigned W>
inline void storeIntervals(Interval *P, const IntervalLanes<W> &X) {
  double *D = reinterpret_cast<double *>(P);
  for (unsigned I = 0; I != W; ++I) {
    D[2 * I] = X.Lo.lane(I);
    D[2 * I + 1] = X.Hi.lane(I);
  }
}

#if defined(SCORPIO_SIMD_AVX2)

// The unpack pair deinterleaves two ymm loads without a cross-lane
// shuffle: with A = [lo0 hi0 lo1 hi1] and B = [lo2 hi2 lo3 hi3],
// unpacklo(A, B) = [lo0 lo2 lo1 lo3] and unpackhi(A, B) =
// [hi0 hi2 hi1 hi3] — array order 0,2,1,3 in the lanes, consistently
// for both bounds, and the same pair of unpacks re-interleaves on
// store.  See the layout note in the file header.

template <> inline IntervalLanes<4> loadIntervals<4>(const Interval *P) {
  const double *D = reinterpret_cast<const double *>(P);
  const __m256d A = _mm256_loadu_pd(D);
  const __m256d B = _mm256_loadu_pd(D + 4);
  return {{_mm256_unpacklo_pd(A, B)}, {_mm256_unpackhi_pd(A, B)}};
}

template <>
inline void storeIntervals<4>(Interval *P, const IntervalLanes<4> &X) {
  double *D = reinterpret_cast<double *>(P);
  _mm256_storeu_pd(D, _mm256_unpacklo_pd(X.Lo.V, X.Hi.V));
  _mm256_storeu_pd(D + 4, _mm256_unpackhi_pd(X.Lo.V, X.Hi.V));
}

#endif // SCORPIO_SIMD_AVX2

/// Lane-wise detail::mulBound: A * B with an exact-zero factor forcing
/// an exact-zero product (0 * inf == 0, the IA convention).
template <unsigned W>
inline DoubleLanes<W> mulBoundLanes(const DoubleLanes<W> &A,
                                    const DoubleLanes<W> &B) {
  const DoubleLanes<W> Z = DoubleLanes<W>::zero();
  return DoubleLanes<W>::select(A.eq(Z) | B.eq(Z), Z, A * B);
}

/// Lane-wise scorpio::operator+ — the adjoint accumulation op.  The
/// scalar early exits become selects applied in reverse check order so
/// the first scalar match wins: A == [0,0] -> B, else B == [0,0] -> A,
/// else outward(A.Lo + B.Lo, A.Hi + B.Hi, 1).
template <unsigned W>
inline IntervalLanes<W> addIA(const IntervalLanes<W> &A,
                              const IntervalLanes<W> &B) {
  IntervalLanes<W> R{(A.Lo + B.Lo).stepDown(), (A.Hi + B.Hi).stepUp()};
  R = IntervalLanes<W>::select(B.isZero(), A, R);
  R = IntervalLanes<W>::select(A.isZero(), B, R);
  return R;
}

/// Lane-wise scorpio::operator* — general interval product: four
/// mulBound corner products, std::min/std::max reduction in the scalar
/// association order, outward by 1 ulp, and the exact-zero-factor lanes
/// forced to exactly [0, 0] (no widening, so zero adjoints stay zero).
template <unsigned W>
inline IntervalLanes<W> mulIA(const IntervalLanes<W> &A,
                              const IntervalLanes<W> &B) {
  using D = DoubleLanes<W>;
  const D P1 = mulBoundLanes(A.Lo, B.Lo);
  const D P2 = mulBoundLanes(A.Lo, B.Hi);
  const D P3 = mulBoundLanes(A.Hi, B.Lo);
  const D P4 = mulBoundLanes(A.Hi, B.Hi);
  const D Lo = D::minStd(D::minStd(P1, P2), D::minStd(P3, P4));
  const D Hi = D::maxStd(D::maxStd(P1, P2), D::maxStd(P3, P4));
  IntervalLanes<W> R{Lo.stepDown(), Hi.stepUp()};
  return IntervalLanes<W>::select(A.isZero() | B.isZero(),
                                  IntervalLanes<W>::zero(), R);
}

/// The adjoint sweep's point-partial shortcut, lane-wise: multiply W
/// intervals by one nonzero point value Pv.  Only two of operator*'s
/// four corner products are distinct, and a one-signed point factor is
/// monotone, so the bounds arrive pre-ordered: ascending for Pv > 0,
/// descending for Pv < 0.  Bit-exactly operator*'s result for nonzero
/// input lanes; callers must still force [0, 0] lanes (see the sweep).
template <bool PositivePv, unsigned W>
inline IntervalLanes<W> mulPoint(const DoubleLanes<W> &Pv,
                                 const IntervalLanes<W> &A) {
  const DoubleLanes<W> X1 = mulBoundLanes(Pv, A.Lo);
  const DoubleLanes<W> X2 = mulBoundLanes(Pv, A.Hi);
  if constexpr (PositivePv)
    return {X1.stepDown(), X2.stepUp()};
  else
    return {X2.stepDown(), X1.stepUp()};
}

/// Lane-wise scorpio::hull: [min(lo, lo'), max(hi, hi')], no outward
/// step (the hull of represented bounds is exactly representable).
template <unsigned W>
inline IntervalLanes<W> hullIA(const IntervalLanes<W> &A,
                               const IntervalLanes<W> &B) {
  using D = DoubleLanes<W>;
  return {D::minStd(A.Lo, B.Lo), D::maxStd(A.Hi, B.Hi)};
}

/// Lane-wise detail::outward(lo, hi, 1): widen every lane by one ulp on
/// each side.
template <unsigned W>
inline IntervalLanes<W> outward1(const IntervalLanes<W> &A) {
  return {A.Lo.stepDown(), A.Hi.stepUp()};
}

} // namespace simd
} // namespace scorpio

#endif // SCORPIO_SIMD_INTERVALLANES_H
