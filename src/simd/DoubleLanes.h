//===- simd/DoubleLanes.h - Explicit-width double lane abstraction --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width vector of doubles with the small operation set the
/// interval hot paths need: lane-wise IEEE arithmetic, comparisons to
/// masks, branch-free selection, and the bit-level outward-rounding
/// steps (stepDown/stepUp) reformulated as integer lane operations.
///
/// The same algorithm source compiles against two backends:
///
///  * The generic template `DoubleLanes<W>` stores `double V[W]` and
///    implements every operation as a fixed-trip-count scalar loop with
///    no data-dependent branches.  It compiles on any target (plain,
///    SSE2, NEON) and is written so the autovectorizer can profitably
///    turn it into whatever the target offers.
///  * Explicit intrinsic specializations (AVX2 `DoubleLanes<4>`) are
///    selected automatically when the translation unit is compiled for
///    a capable ISA.
///
/// `NativeLanes` is the compile-time width the hot paths should use:
/// 1 when SCORPIO_SIMD_DISABLED is defined (the pure-scalar fallback
/// build, -DSCORPIO_SIMD=OFF), otherwise the widest width with hardware
/// backing.  Hot-path loops are written as a `NativeLanes`-wide vector
/// body plus a scalar tail, so the fallback build degenerates to
/// exactly the original scalar loops.
///
/// Semantics contract (pinned by tests/simd_lanes_test.cpp): every
/// operation is bit-identical to its scalar reference —
///
///  * `minStd`/`maxStd` replicate std::min/std::max ordering, including
///    the (b < a) ? b : a tie behavior on signed zeros;
///  * `stepDown`/`stepUp` replicate interval/Interval.h's
///    detail::stepDown/stepUp for every input, including +-0,
///    subnormals, infinities and NaN;
///  * `select` is a pure bit-level blend.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SIMD_DOUBLELANES_H
#define SCORPIO_SIMD_DOUBLELANES_H

#include <cstdint>
#include <cstring>
#include <limits>

#if !defined(SCORPIO_SIMD_DISABLED) && defined(__AVX2__)
#define SCORPIO_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace scorpio {
namespace simd {

/// The lane width the hot paths compile to.  1 means "scalar tail
/// only": the vector bodies vanish and the code is the plain scalar
/// path.
#if defined(SCORPIO_SIMD_DISABLED)
inline constexpr unsigned NativeLanes = 1;
#elif defined(SCORPIO_SIMD_AVX2)
inline constexpr unsigned NativeLanes = 4;
#elif defined(__SSE2__) || defined(__ARM_NEON) || defined(__aarch64__)
// No hand-written intrinsics for these targets (yet): the generic
// branch-free two-lane body is written to autovectorize to their
// 128-bit registers.
inline constexpr unsigned NativeLanes = 2;
#else
inline constexpr unsigned NativeLanes = 1;
#endif

namespace detail {

/// Branch-free scalar equivalent of interval detail::stepDown (next
/// double below X; identity on NaN and -inf).  Kept if-convertible so
/// the generic lane loops vectorize.
inline double stepDownBranchless(double X) {
  std::uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  const bool Preserve =
      X != X || X == -std::numeric_limits<double>::infinity();
  const bool IsZero = X == 0.0;
  const bool Neg = (B >> 63) != 0;
  std::uint64_t Stepped = B + (Neg ? std::uint64_t{1} : ~std::uint64_t{0});
  Stepped = IsZero ? 0x8000000000000001ULL : Stepped;
  double R;
  std::memcpy(&R, &Stepped, sizeof(R));
  return Preserve ? X : R;
}

/// Branch-free scalar equivalent of interval detail::stepUp (next
/// double above X; identity on NaN and +inf).
inline double stepUpBranchless(double X) {
  std::uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  const bool Preserve =
      X != X || X == std::numeric_limits<double>::infinity();
  const bool IsZero = X == 0.0;
  const bool Neg = (B >> 63) != 0;
  std::uint64_t Stepped = B + (Neg ? ~std::uint64_t{0} : std::uint64_t{1});
  Stepped = IsZero ? std::uint64_t{1} : Stepped;
  double R;
  std::memcpy(&R, &Stepped, sizeof(R));
  return Preserve ? X : R;
}

} // namespace detail

/// Per-lane boolean mask.  Generic backend: one bool per lane.
template <unsigned W> struct LaneMask {
  bool M[W];

  bool test(unsigned I) const { return M[I]; }
  bool any() const {
    bool R = false;
    for (unsigned I = 0; I != W; ++I)
      R |= M[I];
    return R;
  }
  bool all() const {
    bool R = true;
    for (unsigned I = 0; I != W; ++I)
      R &= M[I];
    return R;
  }
  /// Lane bits packed LSB-first.
  unsigned bits() const {
    unsigned R = 0;
    for (unsigned I = 0; I != W; ++I)
      R |= static_cast<unsigned>(M[I]) << I;
    return R;
  }

  friend LaneMask operator|(const LaneMask &A, const LaneMask &B) {
    LaneMask R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = A.M[I] | B.M[I];
    return R;
  }
  friend LaneMask operator&(const LaneMask &A, const LaneMask &B) {
    LaneMask R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = A.M[I] & B.M[I];
    return R;
  }
};

/// W doubles operated on lane-wise.  Generic backend.
template <unsigned W> struct DoubleLanes {
  static constexpr unsigned Width = W;
  double V[W];

  static DoubleLanes load(const double *P) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = P[I];
    return R;
  }
  static DoubleLanes broadcast(double X) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = X;
    return R;
  }
  static DoubleLanes zero() { return broadcast(0.0); }

  void store(double *P) const {
    for (unsigned I = 0; I != W; ++I)
      P[I] = V[I];
  }
  double lane(unsigned I) const { return V[I]; }
  void setLane(unsigned I, double X) { V[I] = X; }

  friend DoubleLanes operator+(const DoubleLanes &A, const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = A.V[I] + B.V[I];
    return R;
  }
  friend DoubleLanes operator-(const DoubleLanes &A, const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = A.V[I] - B.V[I];
    return R;
  }
  friend DoubleLanes operator*(const DoubleLanes &A, const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = A.V[I] * B.V[I];
    return R;
  }

  LaneMask<W> eq(const DoubleLanes &B) const {
    LaneMask<W> R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = V[I] == B.V[I];
    return R;
  }
  LaneMask<W> lt(const DoubleLanes &B) const {
    LaneMask<W> R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = V[I] < B.V[I];
    return R;
  }
  LaneMask<W> ge(const DoubleLanes &B) const {
    LaneMask<W> R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = V[I] >= B.V[I];
    return R;
  }
  /// True where the lane is NaN (unordered with itself).
  LaneMask<W> unord() const {
    LaneMask<W> R;
    for (unsigned I = 0; I != W; ++I)
      R.M[I] = V[I] != V[I];
    return R;
  }

  /// Mask ? A : B, lane-wise, as a pure bit blend.
  static DoubleLanes select(const LaneMask<W> &Mask, const DoubleLanes &A,
                            const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = Mask.M[I] ? A.V[I] : B.V[I];
    return R;
  }

  /// std::min semantics: (b < a) ? b : a (bit-identical, including the
  /// +-0 tie and NaN-operand behavior).
  static DoubleLanes minStd(const DoubleLanes &A, const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = B.V[I] < A.V[I] ? B.V[I] : A.V[I];
    return R;
  }
  /// std::max semantics: (a < b) ? b : a.
  static DoubleLanes maxStd(const DoubleLanes &A, const DoubleLanes &B) {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = A.V[I] < B.V[I] ? B.V[I] : A.V[I];
    return R;
  }

  /// Lane-wise next-double-below (interval detail::stepDown).
  DoubleLanes stepDown() const {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = detail::stepDownBranchless(V[I]);
    return R;
  }
  /// Lane-wise next-double-above (interval detail::stepUp).
  DoubleLanes stepUp() const {
    DoubleLanes R;
    for (unsigned I = 0; I != W; ++I)
      R.V[I] = detail::stepUpBranchless(V[I]);
    return R;
  }
};

#if defined(SCORPIO_SIMD_AVX2)

/// AVX2 mask: all-ones / all-zeros double lanes from vcmppd.
template <> struct LaneMask<4> {
  __m256d M;

  bool test(unsigned I) const {
    return (static_cast<unsigned>(_mm256_movemask_pd(M)) >> I) & 1u;
  }
  bool any() const { return _mm256_movemask_pd(M) != 0; }
  bool all() const { return _mm256_movemask_pd(M) == 0xF; }
  unsigned bits() const {
    return static_cast<unsigned>(_mm256_movemask_pd(M));
  }

  friend LaneMask operator|(const LaneMask &A, const LaneMask &B) {
    return {_mm256_or_pd(A.M, B.M)};
  }
  friend LaneMask operator&(const LaneMask &A, const LaneMask &B) {
    return {_mm256_and_pd(A.M, B.M)};
  }
};

/// AVX2 backend: four doubles in one ymm register.
template <> struct DoubleLanes<4> {
  static constexpr unsigned Width = 4;
  __m256d V;

  static DoubleLanes load(const double *P) { return {_mm256_loadu_pd(P)}; }
  static DoubleLanes broadcast(double X) { return {_mm256_set1_pd(X)}; }
  static DoubleLanes zero() { return {_mm256_setzero_pd()}; }

  void store(double *P) const { _mm256_storeu_pd(P, V); }
  double lane(unsigned I) const {
    alignas(32) double T[4];
    _mm256_store_pd(T, V);
    return T[I];
  }
  void setLane(unsigned I, double X) {
    alignas(32) double T[4];
    _mm256_store_pd(T, V);
    T[I] = X;
    V = _mm256_load_pd(T);
  }

  friend DoubleLanes operator+(const DoubleLanes &A, const DoubleLanes &B) {
    return {_mm256_add_pd(A.V, B.V)};
  }
  friend DoubleLanes operator-(const DoubleLanes &A, const DoubleLanes &B) {
    return {_mm256_sub_pd(A.V, B.V)};
  }
  friend DoubleLanes operator*(const DoubleLanes &A, const DoubleLanes &B) {
    return {_mm256_mul_pd(A.V, B.V)};
  }

  LaneMask<4> eq(const DoubleLanes &B) const {
    return {_mm256_cmp_pd(V, B.V, _CMP_EQ_OQ)};
  }
  LaneMask<4> lt(const DoubleLanes &B) const {
    return {_mm256_cmp_pd(V, B.V, _CMP_LT_OQ)};
  }
  LaneMask<4> ge(const DoubleLanes &B) const {
    return {_mm256_cmp_pd(V, B.V, _CMP_GE_OQ)};
  }
  LaneMask<4> unord() const {
    return {_mm256_cmp_pd(V, V, _CMP_UNORD_Q)};
  }

  static DoubleLanes select(const LaneMask<4> &Mask, const DoubleLanes &A,
                            const DoubleLanes &B) {
    // blendv picks the second operand where the mask sign bit is set.
    return {_mm256_blendv_pd(B.V, A.V, Mask.M)};
  }

  static DoubleLanes minStd(const DoubleLanes &A, const DoubleLanes &B) {
    // Not vminpd: its NaN/+-0 behavior differs from std::min's
    // (b < a) ? b : a, and the contract here is bit-identity.
    return select(B.lt(A), B, A);
  }
  static DoubleLanes maxStd(const DoubleLanes &A, const DoubleLanes &B) {
    return select(A.lt(B), B, A);
  }

  DoubleLanes stepDown() const {
    const __m256i B = _mm256_castpd_si256(V);
    const __m256d Preserve = _mm256_or_pd(
        _mm256_cmp_pd(V, V, _CMP_UNORD_Q),
        _mm256_cmp_pd(
            V, _mm256_set1_pd(-std::numeric_limits<double>::infinity()),
            _CMP_EQ_OQ));
    const __m256d IsZero =
        _mm256_cmp_pd(V, _mm256_setzero_pd(), _CMP_EQ_OQ);
    // Negative lanes step +1 in integer space (magnitude grows),
    // positive lanes step -1 (magnitude shrinks).
    const __m256i Neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), B);
    const __m256i Delta =
        _mm256_or_si256(_mm256_and_si256(Neg, _mm256_set1_epi64x(1)),
                        _mm256_andnot_si256(Neg, _mm256_set1_epi64x(-1)));
    __m256d R = _mm256_castsi256_pd(_mm256_add_epi64(B, Delta));
    // Both zeros step to -0x1p-1074.
    R = _mm256_blendv_pd(
        R,
        _mm256_castsi256_pd(
            _mm256_set1_epi64x(static_cast<long long>(0x8000000000000001ULL))),
        IsZero);
    return {_mm256_blendv_pd(R, V, Preserve)};
  }

  DoubleLanes stepUp() const {
    const __m256i B = _mm256_castpd_si256(V);
    const __m256d Preserve = _mm256_or_pd(
        _mm256_cmp_pd(V, V, _CMP_UNORD_Q),
        _mm256_cmp_pd(
            V, _mm256_set1_pd(std::numeric_limits<double>::infinity()),
            _CMP_EQ_OQ));
    const __m256d IsZero =
        _mm256_cmp_pd(V, _mm256_setzero_pd(), _CMP_EQ_OQ);
    const __m256i Neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), B);
    const __m256i Delta =
        _mm256_or_si256(_mm256_and_si256(Neg, _mm256_set1_epi64x(-1)),
                        _mm256_andnot_si256(Neg, _mm256_set1_epi64x(1)));
    __m256d R = _mm256_castsi256_pd(_mm256_add_epi64(B, Delta));
    // Both zeros step to +0x1p-1074.
    R = _mm256_blendv_pd(R, _mm256_castsi256_pd(_mm256_set1_epi64x(1)),
                         IsZero);
    return {_mm256_blendv_pd(R, V, Preserve)};
  }
};

#endif // SCORPIO_SIMD_AVX2

} // namespace simd
} // namespace scorpio

#endif // SCORPIO_SIMD_DOUBLELANES_H
