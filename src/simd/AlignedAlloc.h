//===- simd/AlignedAlloc.h - Cache-line-aligned allocation helpers --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation helpers giving the SoA hot-path arrays (BatchAdjoints,
/// ChunkedVector blocks) cache-line-aligned starts, so vector loads of
/// the leading lanes never straddle a line and the blocks tile cleanly.
/// Alignment is an optimization contract, not a correctness one — the
/// SIMD kernels use unaligned loads — but debug builds assert it so a
/// regression is caught at the allocation site, not in a profile.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_SIMD_ALIGNEDALLOC_H
#define SCORPIO_SIMD_ALIGNEDALLOC_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>

namespace scorpio {
namespace simd {

/// One x86/ARM cache line; also a multiple of every vector register
/// size in use.
inline constexpr std::size_t CacheLineBytes = 64;

/// True iff \p P starts on a cache-line boundary.
inline bool isCacheLineAligned(const void *P) {
  return reinterpret_cast<std::uintptr_t>(P) % CacheLineBytes == 0;
}

/// Minimal C++17 allocator handing out cache-line-aligned storage;
/// drop-in for std::vector's default allocator.
template <typename T> struct AlignedAllocator {
  using value_type = T;
  static_assert((CacheLineBytes & (CacheLineBytes - 1)) == 0,
                "alignment must be a power of two");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U> &) noexcept {}

  T *allocate(std::size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t{CacheLineBytes}));
  }
  void deallocate(T *P, std::size_t) noexcept {
    ::operator delete(P, std::align_val_t{CacheLineBytes});
  }

  template <typename U> struct rebind {
    using other = AlignedAllocator<U>;
  };
  friend bool operator==(const AlignedAllocator &,
                         const AlignedAllocator &) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator &,
                         const AlignedAllocator &) {
    return false;
  }
};

/// Deleter for fixed-count aligned arrays (see allocateAlignedBlock).
template <typename T> struct AlignedBlockDeleter {
  std::size_t Count = 0;
  void operator()(T *P) const noexcept {
    if (!P)
      return;
    for (std::size_t I = Count; I-- > 0;)
      P[I].~T();
    ::operator delete(static_cast<void *>(P),
                      std::align_val_t{CacheLineBytes});
  }
};

/// Owning pointer to a cache-line-aligned, value-initialized T[N].
template <typename T>
using AlignedBlock = std::unique_ptr<T[], AlignedBlockDeleter<T>>;

/// Allocates a cache-line-aligned array of \p N value-initialized Ts —
/// the aligned equivalent of std::make_unique<T[]>(N).
template <typename T> AlignedBlock<T> allocateAlignedBlock(std::size_t N) {
  void *Raw = ::operator new(N * sizeof(T), std::align_val_t{CacheLineBytes});
  T *P = static_cast<T *>(Raw);
  std::size_t I = 0;
  try {
    for (; I != N; ++I)
      new (P + I) T();
  } catch (...) {
    while (I-- > 0)
      P[I].~T();
    ::operator delete(Raw, std::align_val_t{CacheLineBytes});
    throw;
  }
  assert(isCacheLineAligned(P) && "aligned new returned unaligned storage");
  return AlignedBlock<T>(P, AlignedBlockDeleter<T>{N});
}

} // namespace simd
} // namespace scorpio

#endif // SCORPIO_SIMD_ALIGNEDALLOC_H
