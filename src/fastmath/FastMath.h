//===- fastmath/FastMath.h - Light-weight approximate math kernels --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap, reduced-precision replacements for libm functions, standing in
/// for the fastapprox library the paper's approximate task versions use
/// (Section 4.1.5, reference [22]).  All functions trade 3-6 decimal
/// digits of accuracy for a fraction of the cost of the accurate
/// implementation; relative error bounds are documented per function and
/// verified by tests/fastmath_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_FASTMATH_FASTMATH_H
#define SCORPIO_FASTMATH_FASTMATH_H

namespace scorpio {
namespace fastmath {

/// 2^P via a piecewise-polynomial correction of the float exponent-field
/// trick.  Relative error below ~6e-5 for |P| < 120.
float fastPow2(float P);

/// log2(X) for X > 0 via the inverse trick.  Absolute error ~6e-5.
float fastLog2(float X);

/// exp(X); relative error below ~1e-4 over |X| <= 80.
double expFast(double X);

/// Natural log for X > 0; absolute error ~5e-5.
double logFast(double X);

/// X^P for X > 0; relative error grows with |P|, ~1e-4 * |P|.
double powFast(double X, double P);

/// X^N for integer N, square-and-multiply on a truncated float mantissa;
/// cheaper than std::pow for small N and any X (including negatives).
double powIntFast(double X, int N);

/// sqrt via the rsqrt bit trick plus one Newton step; relative error
/// below ~1e-3.
double sqrtFast(double X);

/// 1/sqrt(X) via the classic bit trick plus one Newton step.
double rsqrtFast(double X);

/// Standard normal CDF via the Abramowitz-Stegun 7.1.26 polynomial with
/// expFast; absolute error below ~1e-5 — the paper's BlackScholes blocks
/// C/D substitution.
double cndfFast(double X);

/// Cruder "faster" tier (fastapprox's fasterexp/fasterlog): pure
/// exponent-field manipulation without the polynomial correction.
/// Relative error up to ~4% — used where the paper reports double-digit
/// percentage quality loss from approximate math (BlackScholes blocks
/// C/D at ratio 0).
double expFaster(double X);

/// Crude natural log, matching expFaster's tier; absolute error ~3e-2.
double logFaster(double X);

/// Crude sqrt: exponent halving only (no Newton step); relative error
/// up to ~6%.
double sqrtFaster(double X);

/// Normal CDF built on expFaster; absolute error up to ~1e-2.
double cndfFaster(double X);

/// sin via a Bhaskara-like rational approximation after range reduction;
/// absolute error ~2e-3.
double sinFast(double X);

/// cos via sinFast(x + pi/2).
double cosFast(double X);

} // namespace fastmath
} // namespace scorpio

#endif // SCORPIO_FASTMATH_FASTMATH_H
