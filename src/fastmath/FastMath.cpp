//===- fastmath/FastMath.cpp - Approximate math implementations ----------===//

#include "fastmath/FastMath.h"

#include <bit>
#include <cmath>
#include <cstdint>

namespace scorpio {
namespace fastmath {

float fastPow2(float P) {
  // Clamp to the float exponent range to avoid producing inf/denormals.
  if (P < -126.0f)
    P = -126.0f;
  if (P > 127.0f)
    P = 127.0f;
  const float Offset = P < 0.0f ? 1.0f : 0.0f;
  const float Clipp = P;
  const int32_t W = static_cast<int32_t>(Clipp);
  const float Z = Clipp - static_cast<float>(W) + Offset;
  // Coefficients from fastapprox's fastpow2.
  const float V = (1 << 23) * (Clipp + 121.2740575f +
                               27.7280233f / (4.84252568f - Z) -
                               1.49012907f * Z);
  return std::bit_cast<float>(static_cast<uint32_t>(V));
}

float fastLog2(float X) {
  const uint32_t Bits = std::bit_cast<uint32_t>(X);
  const float MX =
      std::bit_cast<float>((Bits & 0x007FFFFF) | 0x3f000000);
  const float Y = static_cast<float>(Bits) * 1.1920928955078125e-7f;
  // Coefficients from fastapprox's fastlog2.
  return Y - 124.22551499f - 1.498030302f * MX -
         1.72587999f / (0.3520887068f + MX);
}

double expFast(double X) {
  static const float Log2E = 1.442695040f;
  return static_cast<double>(fastPow2(static_cast<float>(X) * Log2E));
}

double logFast(double X) {
  static const float Ln2 = 0.69314718f;
  return static_cast<double>(fastLog2(static_cast<float>(X)) * Ln2);
}

double powFast(double X, double P) {
  return static_cast<double>(
      fastPow2(static_cast<float>(P) * fastLog2(static_cast<float>(X))));
}

double powIntFast(double X, int N) {
  if (N == 0)
    return 1.0;
  const bool Negative = N < 0;
  unsigned K = Negative ? static_cast<unsigned>(-(long long)N)
                        : static_cast<unsigned>(N);
  // Truncate the mantissa to float precision: the "light-weight" part.
  float B = static_cast<float>(X);
  float R = 1.0f;
  while (K) {
    if (K & 1)
      R *= B;
    B *= B;
    K >>= 1;
  }
  const double Result = static_cast<double>(R);
  return Negative ? 1.0 / Result : Result;
}

double rsqrtFast(double X) {
  float XF = static_cast<float>(X);
  const uint32_t I = 0x5f3759df - (std::bit_cast<uint32_t>(XF) >> 1);
  float Y = std::bit_cast<float>(I);
  Y = Y * (1.5f - 0.5f * XF * Y * Y); // one Newton-Raphson step
  return static_cast<double>(Y);
}

double sqrtFast(double X) {
  if (X <= 0.0)
    return 0.0;
  return X * rsqrtFast(X);
}

double cndfFast(double X) {
  // Abramowitz & Stegun 7.1.26 on the complementary half, with the
  // expensive exp replaced by expFast.
  const bool Negative = X < 0.0;
  const double Z = Negative ? -X : X;
  const double T = 1.0 / (1.0 + 0.2316419 * Z);
  const double Poly =
      T * (0.319381530 +
           T * (-0.356563782 +
                T * (1.781477937 + T * (-1.821255978 + T * 1.330274429))));
  const double Pdf = 0.3989422804014327 * expFast(-0.5 * Z * Z);
  const double Tail = Pdf * Poly;
  return Negative ? Tail : 1.0 - Tail;
}

static float fasterPow2(float P) {
  if (P < -126.0f)
    P = -126.0f;
  if (P > 127.0f)
    P = 127.0f;
  const float V = (1 << 23) * (P + 126.94269504f);
  return std::bit_cast<float>(static_cast<uint32_t>(V));
}

static float fasterLog2(float X) {
  const uint32_t Bits = std::bit_cast<uint32_t>(X);
  const float Y = static_cast<float>(Bits) * 1.1920928955078125e-7f;
  return Y - 126.94269504f;
}

double expFaster(double X) {
  static const float Log2E = 1.442695040f;
  return static_cast<double>(fasterPow2(static_cast<float>(X) * Log2E));
}

double logFaster(double X) {
  static const float Ln2 = 0.69314718f;
  return static_cast<double>(fasterLog2(static_cast<float>(X)) * Ln2);
}

double sqrtFaster(double X) {
  if (X <= 0.0)
    return 0.0;
  const float XF = static_cast<float>(X);
  const uint32_t I = (std::bit_cast<uint32_t>(XF) >> 1) + 0x1fbd1df5;
  return static_cast<double>(std::bit_cast<float>(I));
}

double cndfFaster(double X) {
  const bool Negative = X < 0.0;
  const double Z = Negative ? -X : X;
  const double T = 1.0 / (1.0 + 0.2316419 * Z);
  const double Poly =
      T * (0.319381530 +
           T * (-0.356563782 +
                T * (1.781477937 + T * (-1.821255978 + T * 1.330274429))));
  const double Pdf = 0.3989422804014327 * expFaster(-0.5 * Z * Z);
  const double Tail = Pdf * Poly;
  return Negative ? Tail : 1.0 - Tail;
}

double sinFast(double X) {
  // Range-reduce to [-pi, pi].
  static const double Pi = 3.14159265358979323846;
  static const double TwoPi = 2.0 * Pi;
  static const double InvTwoPi = 1.0 / TwoPi;
  X -= TwoPi * std::floor(X * InvTwoPi + 0.5);
  // Parabolic approximation with a correction pass.
  const double B = 4.0 / Pi;
  const double C = -4.0 / (Pi * Pi);
  double Y = B * X + C * X * std::fabs(X);
  Y = 0.775 * Y + 0.225 * Y * std::fabs(Y);
  return Y;
}

double cosFast(double X) {
  static const double HalfPi = 1.57079632679489661923;
  return sinFast(X + HalfPi);
}

} // namespace fastmath
} // namespace scorpio
