//===- kernels/PaperKernels.cpp - The paper's benchmarks as components ----===//
//
// Component versions of the CGO-2016 benchmark kernels (Section 4) plus
// the Maclaurin running example (Section 3), registered into the
// KernelRegistry so any client — significance analysis, Monte Carlo
// validation, and in particular the scorpio-lint static-analysis driver
// — can run them by name.  Each kernel is written once as a template
// over the scalar type and registers the paper's block intermediates,
// so per-variable reports and lint findings attribute to the same
// structure the paper discusses.
//
// These are the *analysable cores* (one pixel / row / pair / option),
// not the full-image drivers of src/apps: the registry model is
// fixed-arity input boxes, which is exactly the granularity the paper's
// per-kernel analyses use (Figures 3-7).
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string>

using namespace scorpio;

namespace {

/// Intermediate-registration callback: a no-op for the double
/// instantiation, Analysis::registerIntermediate for IAValue.
struct NoRegister {
  template <typename T>
  void operator()(const T &, const char *) const {}
};

struct AnalysisRegister {
  Analysis &A;
  void operator()(const IAValue &V, const char *Name) const {
    A.registerIntermediate(V, Name);
  }
};

/// double overloads visible at template definition (IAValue overloads
/// resolve via ADL).
double sqr(double X) { return X * X; }
double pow(double X, int N) { return std::pow(X, N); }

/// Builds a KernelDescriptor from one templated callable
/// `std::vector<T> f(const std::vector<T>&, Reg)` producing the named
/// outputs.  The point evaluator returns the sum of the outputs (the
/// combined-seed quantity PerOutput analysis also totals).
template <typename Fn>
KernelDescriptor makePaperKernel(std::string Name, std::string Description,
                                 std::vector<std::string> InputNames,
                                 std::vector<Interval> Ranges,
                                 std::vector<std::string> OutputNames,
                                 Fn F) {
  KernelDescriptor D;
  D.Name = std::move(Name);
  D.Description = std::move(Description);
  D.InputNames = std::move(InputNames);
  D.DefaultRanges = std::move(Ranges);
  D.Evaluate = [F](std::span<const double> X) {
    const std::vector<double> Out =
        F(std::vector<double>(X.begin(), X.end()), NoRegister{});
    double Sum = 0.0;
    for (double Y : Out)
      Sum += Y;
    return Sum;
  };
  const std::vector<std::string> Ins = D.InputNames;
  D.Analyse = [F, Ins, OutputNames](Analysis &A,
                                    std::span<const Interval> Box) {
    std::vector<IAValue> X;
    X.reserve(Box.size());
    for (size_t I = 0; I != Box.size(); ++I)
      X.push_back(A.input(Ins[I], Box[I].lower(), Box[I].upper()));
    const std::vector<IAValue> Out = F(X, AnalysisRegister{A});
    for (size_t I = 0; I != Out.size(); ++I)
      A.registerOutput(Out[I], OutputNames[std::min(
                                   I, OutputNames.size() - 1)]);
  };
  return D;
}

/// Section 3 / Figure 3: the Maclaurin geometric series
/// f(x) = sum_i x^i, each term a registered intermediate (Listing 6).
template <typename T, typename Reg>
std::vector<T> maclaurinKernel(const std::vector<T> &X, Reg R) {
  const int N = 8;
  T Res = 1.0; // x^0: a passive constant, recorded only when consumed
  for (int I = 1; I != N; ++I) {
    T Term = pow(X[0], I);
    R(Term, ("term" + std::to_string(I)).c_str());
    Res = Res + Term;
  }
  return {Res};
}

/// Section 4.1.1: one Sobel output pixel from its 3x3 neighborhood —
/// Gx/Gy convolutions, magnitude, clip to [0, 255].
template <typename T, typename Reg>
std::vector<T> sobelKernel(const std::vector<T> &X, Reg R) {
  using std::min;
  using std::sqrt;
  // Row-major p00..p22.
  const T &P00 = X[0], &P01 = X[1], &P02 = X[2];
  const T &P10 = X[3], &P12 = X[5];
  const T &P20 = X[6], &P21 = X[7], &P22 = X[8];
  T Gx = (P02 + 2.0 * P12 + P22) - (P00 + 2.0 * P10 + P20);
  T Gy = (P20 + 2.0 * P21 + P22) - (P00 + 2.0 * P01 + P02);
  R(Gx, "gx");
  R(Gy, "gy");
  T Mag = sqrt(sqr(Gx) + sqr(Gy));
  return {min(Mag, T(255.0))};
}

/// Section 4.1.2: one row of the DCT pipeline — 8-point DCT-II,
/// JPEG-style quantize, de-quantize (the zig-zag-shaping stage of
/// Figure 4), all eight reconstructed coefficients as outputs.
template <typename T, typename Reg>
std::vector<T> dct8Kernel(const std::vector<T> &X, Reg R) {
  using std::round;
  static const double QRow[8] = {16, 11, 10, 16, 24, 40, 51, 61};
  const double Pi = 3.14159265358979323846;
  std::vector<T> Out;
  Out.reserve(8);
  for (int U = 0; U != 8; ++U) {
    const double AU = U == 0 ? std::sqrt(1.0 / 8.0) : 0.5;
    T C = 0.0;
    for (int K = 0; K != 8; ++K)
      C = C + (X[static_cast<size_t>(K)] - 128.0) *
                  (AU * std::cos((2 * K + 1) * U * Pi / 16.0));
    R(C, ("c" + std::to_string(U)).c_str());
    // Quantize / de-quantize: coarse steps swallow perturbations.
    T Q = round(C * (1.0 / QRow[U]));
    Out.push_back(Q * QRow[U]);
  }
  return Out;
}

/// Section 4.1.3a: the Fisheye InverseMapping kernel — output pixel
/// coordinates to distorted-image coordinates through the
/// tangent-compression lens model (tanOverX is the dependency-safe
/// primitive of Section 2.2).
template <typename T, typename Reg>
std::vector<T> fisheyeMapKernel(const std::vector<T> &X, Reg R) {
  using std::sqrt;
  const int W = 640, H = 480;
  const double Cx = 0.5 * (W - 1), Cy = 0.5 * (H - 1);
  const double HalfDiag = std::sqrt(Cx * Cx + Cy * Cy);
  const double Phi = 0.85 * 1.57079632679489661923;
  const double TanPhi = std::tan(Phi);
  T Nx = (X[0] - Cx) * (1.0 / HalfDiag);
  T Ny = (X[1] - Cy) * (1.0 / HalfDiag);
  T Rad = sqrt(Nx * Nx + Ny * Ny);
  R(Rad, "r");
  T Scale = tanOverX(Rad, Phi) * (1.0 / TanPhi);
  R(Scale, "scale");
  return {Cx + Nx * Scale * HalfDiag, Cy + Ny * Scale * HalfDiag};
}

/// Section 4.1.3b: the Fisheye BicubicInterp kernel — Catmull-Rom
/// interpolation over a 4x4 window (first 16 inputs) at fractional
/// position (fx, fy) (last two inputs).  Figure 6: the inner rows and
/// columns dominate.
template <typename T, typename Reg>
std::vector<T> bicubicKernel(const std::vector<T> &X, Reg R) {
  auto Weights = [](const T &F) {
    std::array<T, 4> Wt;
    T F2 = F * F;
    T F3 = F2 * F;
    Wt[0] = -0.5 * F3 + F2 - 0.5 * F;
    Wt[1] = 1.5 * F3 - 2.5 * F2 + 1.0;
    Wt[2] = -1.5 * F3 + 2.0 * F2 + 0.5 * F;
    Wt[3] = 0.5 * F3 - 0.5 * F2;
    return Wt;
  };
  const std::array<T, 4> Wx = Weights(X[16]);
  const std::array<T, 4> Wy = Weights(X[17]);
  T Acc = 0.0;
  for (int J = 0; J != 4; ++J) {
    T Row = 0.0;
    for (int I = 0; I != 4; ++I)
      Row = Row + Wx[static_cast<size_t>(I)] *
                      X[static_cast<size_t>(4 * J + I)];
    R(Row, ("row" + std::to_string(J)).c_str());
    Acc = Acc + Wy[static_cast<size_t>(J)] * Row;
  }
  return {Acc};
}

/// Section 4.1.4: the N-Body pair interaction — Lennard-Jones energy
/// (Eq. 13) and force magnitude for a component distance (dx, dy, dz),
/// in reduced units.  The distance decay is what grounds the paper's
/// region-significance claim.
template <typename T, typename Reg>
std::vector<T> nbodyPairKernel(const std::vector<T> &X, Reg R) {
  T R2 = sqr(X[0]) + sqr(X[1]) + sqr(X[2]);
  R(R2, "r2");
  T Inv2 = 1.0 / R2;
  T S6 = pow(Inv2, 3);
  R(S6, "s6");
  T Energy = 4.0 * (S6 * S6 - S6);
  T ForceMag = 24.0 * (2.0 * (S6 * S6) - S6) * Inv2;
  return {Energy, ForceMag};
}

/// Section 4.1.5: BlackScholes European call — the d1/d2 core (block
/// A), the two CNDF evaluations (B), the discount factor (C) and
/// sqrt(T) (D) as intermediates, matching the paper's block ranking
/// sig(A) > sig(B) >> sig(C) > sig(D).
template <typename T, typename Reg>
std::vector<T> blackscholesKernel(const std::vector<T> &X, Reg R) {
  using std::erf;
  using std::exp;
  using std::log;
  using std::sqrt;
  const T &S = X[0], &K = X[1], &Rf = X[2], &V = X[3], &Tm = X[4];
  const double InvSqrt2 = 0.70710678118654752440;
  T SqrtT = sqrt(Tm);
  R(SqrtT, "sqrtT");
  T D1 = (log(S / K) + (Rf + 0.5 * sqr(V)) * Tm) / (V * SqrtT);
  T D2 = D1 - V * SqrtT;
  R(D1, "d1");
  R(D2, "d2");
  T N1 = 0.5 * (1.0 + erf(D1 * InvSqrt2));
  T N2 = 0.5 * (1.0 + erf(D2 * InvSqrt2));
  R(N1, "cndf1");
  R(N2, "cndf2");
  T Discount = exp(0.0 - Rf * Tm);
  R(Discount, "discount");
  return {S * N1 - K * Discount * N2};
}

} // namespace

void scorpio::registerPaperKernels(KernelRegistry &Registry) {
  Registry.add(makePaperKernel(
      "maclaurin", "Maclaurin geometric series (Section 3, Figure 3)",
      {"x"}, {Interval(0.4, 0.6)}, {"result"},
      [](const auto &X, auto R) { return maclaurinKernel(X, R); }));

  {
    std::vector<std::string> Ins;
    std::vector<Interval> Ranges;
    for (int Y = 0; Y != 3; ++Y)
      for (int X = 0; X != 3; ++X) {
        Ins.push_back("p" + std::to_string(Y) + std::to_string(X));
        // The paper's profiling box: pixel value +- 8 around a
        // horizontal gradient, so Gx is biased but Gy straddles zero.
        const double Center = 100.0 + 30.0 * X;
        Ranges.push_back(Interval(Center - 8.0, Center + 8.0));
      }
    Registry.add(makePaperKernel(
        "sobel-pixel", "Sobel edge magnitude of one pixel (Section 4.1.1)",
        std::move(Ins), std::move(Ranges), {"t"},
        [](const auto &X, auto R) { return sobelKernel(X, R); }));
  }

  {
    std::vector<std::string> Ins;
    std::vector<std::string> Outs;
    for (int K = 0; K != 8; ++K) {
      Ins.push_back("p" + std::to_string(K));
      Outs.push_back("out" + std::to_string(K));
    }
    Registry.add(makePaperKernel(
        "dct8", "8-point DCT row with JPEG quantization (Section 4.1.2)",
        std::move(Ins), std::vector<Interval>(8, Interval(112.0, 144.0)),
        std::move(Outs),
        [](const auto &X, auto R) { return dct8Kernel(X, R); }));
  }

  Registry.add(makePaperKernel(
      "fisheye-inverse-mapping",
      "Fisheye lens inverse mapping of one output pixel (Section 4.1.3)",
      {"x", "y"}, {Interval(400.0, 410.0), Interval(300.0, 310.0)},
      {"srcx", "srcy"},
      [](const auto &X, auto R) { return fisheyeMapKernel(X, R); }));

  {
    std::vector<std::string> Ins;
    std::vector<Interval> Ranges;
    for (int J = 0; J != 4; ++J)
      for (int I = 0; I != 4; ++I) {
        Ins.push_back("p" + std::to_string(J) + std::to_string(I));
        Ranges.push_back(Interval(120.0, 136.0));
      }
    Ins.push_back("fx");
    Ins.push_back("fy");
    Ranges.push_back(Interval(0.2, 0.8));
    Ranges.push_back(Interval(0.2, 0.8));
    Registry.add(makePaperKernel(
        "fisheye-bicubic",
        "Catmull-Rom bicubic interpolation on a 4x4 window (Section "
        "4.1.3)",
        std::move(Ins), std::move(Ranges), {"sample"},
        [](const auto &X, auto R) { return bicubicKernel(X, R); }));
  }

  Registry.add(makePaperKernel(
      "nbody-lj-pair",
      "Lennard-Jones pair energy and force, reduced units (Section "
      "4.1.4)",
      {"dx", "dy", "dz"},
      std::vector<Interval>(3, Interval(0.58, 0.72)),
      {"energy", "force"},
      [](const auto &X, auto R) { return nbodyPairKernel(X, R); }));

  Registry.add(makePaperKernel(
      "blackscholes-call",
      "BlackScholes European call with block intermediates (Section "
      "4.1.5)",
      {"S", "K", "r", "v", "T"},
      {Interval(90.0, 110.0), Interval(95.0, 105.0),
       Interval(0.01, 0.05), Interval(0.15, 0.35), Interval(0.5, 2.0)},
      {"price"},
      [](const auto &X, auto R) { return blackscholesKernel(X, R); }));
}
