//===- kernels/KernelRegistry.h - Reusable analyzable kernels -------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's closing future-work item: "we plan to expand our
/// framework to treat kernels as reusable components in the spirit of
/// libraries" (Section 6).  This module provides that component model:
/// a kernel is registered once with its metadata — name, input arity,
/// default profiling ranges, a point evaluator and an analysis
/// evaluator built from the same templated source — and any client can
/// then run significance analysis, Monte Carlo validation, or split
/// analysis on it by name, without knowing its internals.
///
/// A starter library of common numeric kernels ships in
/// StandardKernels.h (polynomial evaluation, dot products, convolution,
/// Newton steps, numerical quadrature, ...); applications register
/// their own with KernelRegistry::global().add(...).
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_KERNELS_KERNELREGISTRY_H
#define SCORPIO_KERNELS_KERNELREGISTRY_H

#include "core/Analysis.h"
#include "core/MonteCarlo.h"
#include "core/SplitAnalysis.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace scorpio {

/// A registered, analysis-ready kernel component.
struct KernelDescriptor {
  /// Unique registry name, kebab-case ("horner-poly5").
  std::string Name;
  /// One-line description shown by listings.
  std::string Description;
  /// Input names, defining the arity and registration order.
  std::vector<std::string> InputNames;
  /// Default profiling ranges, one per input.
  std::vector<Interval> DefaultRanges;
  /// Evaluates the kernel on concrete inputs (for Monte Carlo and for
  /// plain execution).
  PointKernel Evaluate;
  /// Runs the kernel under an Analysis with the given input box,
  /// registering inputs (using InputNames), intermediates and outputs.
  AnalysisKernel Analyse;
};

/// Name-indexed collection of kernel components.
class KernelRegistry {
public:
  KernelRegistry() = default;

  /// Registers a kernel; the name must be unused.  Returns the stored
  /// descriptor.
  const KernelDescriptor &add(KernelDescriptor Desc);

  /// Looks a kernel up by name; nullptr when absent.
  const KernelDescriptor *find(const std::string &Name) const;

  /// Names of all registered kernels, sorted.
  std::vector<std::string> names() const;

  size_t size() const { return Kernels.size(); }

  /// Runs significance analysis on the named kernel over its default
  /// ranges (or \p CustomBox when non-empty).
  AnalysisResult analyse(const std::string &Name,
                         const std::vector<Interval> &CustomBox = {},
                         const AnalysisOptions &Options = {}) const;

  /// Monte Carlo input significances for cross-validation.
  std::vector<double>
  monteCarlo(const std::string &Name,
             const std::vector<Interval> &CustomBox = {},
             const MonteCarloOptions &Options = {}) const;

  /// The process-wide registry, pre-populated with the standard kernels
  /// (see StandardKernels.h).
  static KernelRegistry &global();

private:
  std::map<std::string, KernelDescriptor> Kernels;
};

/// Registers the standard kernel library into \p Registry (idempotent
/// per registry: asserts on duplicate names).
void registerStandardKernels(KernelRegistry &Registry);

/// Registers component versions of the paper's six benchmark kernels
/// (Sobel pixel, DCT row, the two Fisheye kernels, N-Body pair force,
/// BlackScholes pricing) plus the Figure-3 Maclaurin running example,
/// each with the paper's block intermediates registered so
/// significance reports and the scorpio-lint driver can attribute
/// findings (see PaperKernels.cpp).
void registerPaperKernels(KernelRegistry &Registry);

} // namespace scorpio

#endif // SCORPIO_KERNELS_KERNELREGISTRY_H
