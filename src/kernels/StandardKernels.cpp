//===- kernels/StandardKernels.cpp - The standard kernel library ---------===//
//
// A starter library of reusable numeric kernels, each written once as a
// template over the scalar type and registered with both a point
// evaluator (double) and an analysis evaluator (IAValue) derived from
// the same source — the "kernels as library components" model of the
// paper's Section 6.
//
//===----------------------------------------------------------------------===//

#include "kernels/KernelRegistry.h"

#include <cmath>

using namespace scorpio;

namespace {

/// Builds a KernelDescriptor from one templated callable
/// `T f(const std::vector<T>&)` usable with both double and IAValue.
template <typename Fn>
KernelDescriptor makeKernel(std::string Name, std::string Description,
                            std::vector<std::string> InputNames,
                            std::vector<Interval> Ranges, Fn F) {
  KernelDescriptor D;
  D.Name = std::move(Name);
  D.Description = std::move(Description);
  D.InputNames = std::move(InputNames);
  D.DefaultRanges = std::move(Ranges);
  D.Evaluate = [F](std::span<const double> X) {
    return F(std::vector<double>(X.begin(), X.end()));
  };
  const std::vector<std::string> Names = D.InputNames;
  D.Analyse = [F, Names](Analysis &A, std::span<const Interval> Box) {
    std::vector<IAValue> X;
    X.reserve(Box.size());
    for (size_t I = 0; I != Box.size(); ++I)
      X.push_back(A.input(Names[I], Box[I].lower(), Box[I].upper()));
    IAValue Y = F(X);
    A.registerOutput(Y, "y");
  };
  return D;
}

/// double overloads so the templated kernels compile in the double
/// instantiation (the IAValue overloads are found via ADL; these must
/// be visible at template definition).
double sqr(double X) { return X * X; }
double pow(double X, int N) { return std::pow(X, N); }

/// Horner evaluation of p(x) = 1 - x + 2x^2 - 0.5x^3 + 0.25x^4.
template <typename T> T hornerPoly(const std::vector<T> &X) {
  static const double C[] = {0.25, -0.5, 2.0, -1.0, 1.0};
  T Acc = C[0];
  for (int I = 1; I < 5; ++I)
    Acc = Acc * X[0] + C[I];
  return Acc;
}

/// Dot product of two 4-vectors (inputs a0..a3, b0..b3).
template <typename T> T dot4(const std::vector<T> &X) {
  T Acc = 0.0;
  for (int I = 0; I < 4; ++I)
    Acc = Acc + X[static_cast<size_t>(I)] * X[static_cast<size_t>(4 + I)];
  return Acc;
}

/// Centered 3-tap smoothing convolution 0.25*l + 0.5*c + 0.25*r.
template <typename T> T conv3(const std::vector<T> &X) {
  return 0.25 * X[0] + 0.5 * X[1] + 0.25 * X[2];
}

/// One Newton step for sqrt(a) from iterate y: 0.5 * (y + a / y).
template <typename T> T newtonSqrtStep(const std::vector<T> &X) {
  return 0.5 * (X[1] + X[0] / X[1]);
}

/// 4-panel trapezoidal quadrature of exp over [a, b].
template <typename T> T trapezoidExp(const std::vector<T> &X) {
  using std::exp;
  const int Panels = 4;
  T H = (X[1] - X[0]) * (1.0 / Panels);
  T Acc = 0.5 * (exp(X[0]) + exp(X[1]));
  for (int I = 1; I < Panels; ++I)
    Acc = Acc + exp(X[0] + H * static_cast<double>(I));
  return Acc * H;
}

/// Two-class softmax probability of class 0.
template <typename T> T softmax2(const std::vector<T> &X) {
  using std::exp;
  T E0 = exp(X[0]);
  T E1 = exp(X[1]);
  return E0 / (E0 + E1);
}

/// The paper's Eq. 13 Lennard-Jones potential V(r; eps, sigma).
template <typename T> T ljPotential(const std::vector<T> &X) {
  T SigmaOverR = X[2] / X[0];
  T S6 = pow(SigmaOverR, 6);
  return 4.0 * X[1] * (S6 * S6 - S6);
}

/// The paper's Listing-1 running function.
template <typename T> T listing1(const std::vector<T> &X) {
  using std::cos;
  using std::exp;
  using std::sin;
  return cos(exp(sin(X[0]) + X[0]) - X[0]);
}

/// Geometric mean of three positive inputs via exp/log.
template <typename T> T geoMean3(const std::vector<T> &X) {
  using std::exp;
  using std::log;
  return exp((log(X[0]) + log(X[1]) + log(X[2])) * (1.0 / 3.0));
}

/// Root mean square of three inputs.
template <typename T> T rms3(const std::vector<T> &X) {
  using std::sqrt;
  return sqrt((sqr(X[0]) + sqr(X[1]) + sqr(X[2])) * (1.0 / 3.0));
}

} // namespace

void scorpio::registerStandardKernels(KernelRegistry &Registry) {
  Registry.add(makeKernel(
      "horner-poly4", "degree-4 polynomial via Horner's rule", {"x"},
      {Interval(-1.0, 1.0)},
      [](const auto &X) { return hornerPoly(X); }));
  Registry.add(makeKernel(
      "dot4", "dot product of two 4-vectors",
      {"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"},
      std::vector<Interval>(8, Interval(-1.0, 1.0)),
      [](const auto &X) { return dot4(X); }));
  Registry.add(makeKernel(
      "conv3", "3-tap smoothing convolution", {"left", "center", "right"},
      std::vector<Interval>(3, Interval(0.0, 255.0)),
      [](const auto &X) { return conv3(X); }));
  Registry.add(makeKernel(
      "newton-sqrt-step", "one Newton iteration towards sqrt(a)",
      {"a", "y"}, {Interval(1.0, 4.0), Interval(1.0, 2.5)},
      [](const auto &X) { return newtonSqrtStep(X); }));
  Registry.add(makeKernel(
      "trapezoid-exp", "4-panel trapezoidal quadrature of exp on [a, b]",
      {"a", "b"}, {Interval(-0.5, 0.0), Interval(0.5, 1.0)},
      [](const auto &X) { return trapezoidExp(X); }));
  Registry.add(makeKernel(
      "softmax2", "two-class softmax probability", {"x0", "x1"},
      {Interval(-2.0, 2.0), Interval(-2.0, 2.0)},
      [](const auto &X) { return softmax2(X); }));
  Registry.add(makeKernel(
      "lj-potential", "Lennard-Jones pair potential (paper Eq. 13)",
      {"r", "eps", "sigma"},
      {Interval(0.9, 3.0), Interval(0.95, 1.05), Interval(0.95, 1.05)},
      [](const auto &X) { return ljPotential(X); }));
  Registry.add(makeKernel(
      "listing1", "the paper's running example cos(exp(sin x + x) - x)",
      {"x"}, {Interval(-0.5, 0.5)},
      [](const auto &X) { return listing1(X); }));
  Registry.add(makeKernel(
      "geo-mean3", "geometric mean of three positive values",
      {"x0", "x1", "x2"},
      std::vector<Interval>(3, Interval(0.5, 2.0)),
      [](const auto &X) { return geoMean3(X); }));
  Registry.add(makeKernel(
      "rms3", "root mean square of three values", {"x0", "x1", "x2"},
      std::vector<Interval>(3, Interval(-2.0, 2.0)),
      [](const auto &X) { return rms3(X); }));
}
