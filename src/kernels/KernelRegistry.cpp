//===- kernels/KernelRegistry.cpp - Reusable analyzable kernels ----------===//

#include "kernels/KernelRegistry.h"

using namespace scorpio;

const KernelDescriptor &KernelRegistry::add(KernelDescriptor Desc) {
  assert(!Desc.Name.empty() && "kernel needs a name");
  assert(Desc.InputNames.size() == Desc.DefaultRanges.size() &&
         "one default range per input");
  assert(Desc.Evaluate && Desc.Analyse && "kernel needs both evaluators");
  auto [It, Inserted] = Kernels.emplace(Desc.Name, std::move(Desc));
  assert(Inserted && "duplicate kernel name");
  (void)Inserted;
  return It->second;
}

const KernelDescriptor *
KernelRegistry::find(const std::string &Name) const {
  auto It = Kernels.find(Name);
  return It == Kernels.end() ? nullptr : &It->second;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Kernels.size());
  for (const auto &[Name, Desc] : Kernels)
    Out.push_back(Name);
  return Out;
}

AnalysisResult
KernelRegistry::analyse(const std::string &Name,
                        const std::vector<Interval> &CustomBox,
                        const AnalysisOptions &Options) const {
  const KernelDescriptor *K = find(Name);
  assert(K && "unknown kernel");
  const std::vector<Interval> &Box =
      CustomBox.empty() ? K->DefaultRanges : CustomBox;
  assert(Box.size() == K->InputNames.size() && "box arity mismatch");
  Analysis A;
  K->Analyse(A, Box);
  return A.analyse(Options);
}

std::vector<double>
KernelRegistry::monteCarlo(const std::string &Name,
                           const std::vector<Interval> &CustomBox,
                           const MonteCarloOptions &Options) const {
  const KernelDescriptor *K = find(Name);
  assert(K && "unknown kernel");
  const std::vector<Interval> &Box =
      CustomBox.empty() ? K->DefaultRanges : CustomBox;
  return monteCarloInputSignificance(K->Evaluate, Box, Options);
}

KernelRegistry &KernelRegistry::global() {
  static KernelRegistry *Registry = [] {
    auto *R = new KernelRegistry();
    registerStandardKernels(*R);
    registerPaperKernels(*R);
    return R;
  }();
  return *Registry;
}
