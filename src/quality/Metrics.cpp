//===- quality/Metrics.cpp - Output quality metrics ----------------------===//

#include "quality/Metrics.h"

#include "support/Diag.h"

#include <cmath>
#include <limits>

using namespace scorpio;

// Recovery convention for invalid metric inputs: +inf, i.e. "worst
// possible error".  Quality-driven decisions (ratio controllers,
// calibration searches) then fail towards full accuracy instead of
// silently reporting perfect quality for an uncomparable pair.
static constexpr double WorstError = std::numeric_limits<double>::infinity();

double scorpio::mseOf(const Image &A, const Image &B) {
  SCORPIO_REQUIRE(A.width() == B.width() && A.height() == B.height(),
                  diag::ErrC::SizeMismatch, "mseOf: image size mismatch",
                  WorstError);
  SCORPIO_REQUIRE(!A.empty(), diag::ErrC::EmptyInput, "mseOf: empty images",
                  WorstError);
  double Sum = 0.0;
  const auto &DA = A.data();
  const auto &DB = B.data();
  for (size_t I = 0; I != DA.size(); ++I) {
    const double D = static_cast<double>(DA[I]) - static_cast<double>(DB[I]);
    Sum += D * D;
  }
  return Sum / static_cast<double>(DA.size());
}

double scorpio::psnrOf(const Image &A, const Image &B, double CapDb) {
  const double Mse = mseOf(A, B);
  if (Mse == 0.0)
    return CapDb;
  const double Psnr = 10.0 * std::log10(255.0 * 255.0 / Mse);
  return std::min(Psnr, CapDb);
}

double scorpio::mseOf(std::span<const double> A, std::span<const double> B) {
  SCORPIO_REQUIRE(A.size() == B.size(), diag::ErrC::SizeMismatch,
                  "mseOf: vector size mismatch", WorstError);
  SCORPIO_REQUIRE(!A.empty(), diag::ErrC::EmptyInput, "mseOf: empty vectors",
                  WorstError);
  double Sum = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    const double D = A[I] - B[I];
    Sum += D * D;
  }
  return Sum / static_cast<double>(A.size());
}

double scorpio::relativeErrorOf(std::span<const double> A,
                                std::span<const double> B) {
  SCORPIO_REQUIRE(A.size() == B.size(), diag::ErrC::SizeMismatch,
                  "relativeErrorOf: vector size mismatch", WorstError);
  double Num = 0.0, Den = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    Num += std::fabs(A[I] - B[I]);
    Den += std::fabs(A[I]);
  }
  if (Den == 0.0)
    return Num == 0.0 ? 0.0 : 1.0;
  return Num / Den;
}

double scorpio::maxRelativeErrorOf(std::span<const double> A,
                                   std::span<const double> B) {
  SCORPIO_REQUIRE(A.size() == B.size(), diag::ErrC::SizeMismatch,
                  "maxRelativeErrorOf: vector size mismatch", WorstError);
  double Max = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    const double Scale = std::max(std::fabs(A[I]), 1e-12);
    Max = std::max(Max, std::fabs(A[I] - B[I]) / Scale);
  }
  return Max;
}
