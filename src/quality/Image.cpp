//===- quality/Image.cpp - Image container, PGM I/O, generators ----------===//

#include "quality/Image.h"

#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <fstream>

using namespace scorpio;

uint8_t Image::clamped(int X, int Y) const {
  X = std::clamp(X, 0, W - 1);
  Y = std::clamp(Y, 0, H - 1);
  return at(X, Y);
}

bool Image::writePgm(const std::string &Path) const {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS)
    return false;
  OS << "P5\n" << W << " " << H << "\n255\n";
  OS.write(reinterpret_cast<const char *>(Pixels.data()),
           static_cast<std::streamsize>(Pixels.size()));
  return static_cast<bool>(OS);
}

Image Image::readPgm(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Image();
  std::string Magic;
  IS >> Magic;
  if (Magic != "P5" && Magic != "P2")
    return Image();
  auto SkipJunk = [&] {
    while (IS) {
      IS >> std::ws;
      if (IS.peek() != '#')
        break;
      std::string Comment;
      std::getline(IS, Comment);
    }
  };
  int W = 0, H = 0, MaxVal = 0;
  SkipJunk();
  IS >> W;
  SkipJunk();
  IS >> H;
  SkipJunk();
  IS >> MaxVal;
  if (!IS || W <= 0 || H <= 0 || MaxVal <= 0 || MaxVal > 255)
    return Image();
  Image Img(W, H);
  if (Magic == "P5") {
    IS.get(); // the single whitespace after maxval
    IS.read(reinterpret_cast<char *>(Img.data().data()),
            static_cast<std::streamsize>(Img.size()));
    if (!IS)
      return Image();
    return Img;
  }
  for (uint8_t &Px : Img.data()) {
    int V = 0;
    IS >> V;
    if (!IS)
      return Image();
    Px = static_cast<uint8_t>(std::clamp(V, 0, 255));
  }
  return Img;
}

Image Image::readPpmLuma(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Image();
  std::string Magic;
  IS >> Magic;
  if (Magic != "P6")
    return Image();
  auto SkipJunk = [&] {
    while (IS) {
      IS >> std::ws;
      if (IS.peek() != '#')
        break;
      std::string Comment;
      std::getline(IS, Comment);
    }
  };
  int W = 0, H = 0, MaxVal = 0;
  SkipJunk();
  IS >> W;
  SkipJunk();
  IS >> H;
  SkipJunk();
  IS >> MaxVal;
  if (!IS || W <= 0 || H <= 0 || MaxVal <= 0 || MaxVal > 255)
    return Image();
  IS.get();
  std::vector<uint8_t> Rgb(static_cast<size_t>(W) * H * 3);
  IS.read(reinterpret_cast<char *>(Rgb.data()),
          static_cast<std::streamsize>(Rgb.size()));
  if (!IS)
    return Image();
  Image Img(W, H);
  for (size_t P = 0; P != Img.size(); ++P) {
    const double Luma = 0.299 * Rgb[P * 3 + 0] +
                        0.587 * Rgb[P * 3 + 1] +
                        0.114 * Rgb[P * 3 + 2];
    Img.data()[P] = clampToByte(Luma);
  }
  return Img;
}

Image Image::readAnyLuma(const std::string &Path) {
  std::ifstream Probe(Path, std::ios::binary);
  std::string Magic;
  Probe >> Magic;
  Probe.close();
  if (Magic == "P6")
    return readPpmLuma(Path);
  if (Magic == "P5" || Magic == "P2")
    return readPgm(Path);
  return Image();
}

uint8_t scorpio::clampToByte(double X) {
  return static_cast<uint8_t>(std::clamp(std::lround(X), 0L, 255L));
}

Image testimages::gradient(int W, int H) {
  Image Img(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      Img.at(X, Y) = clampToByte(
          255.0 * (X + Y) / static_cast<double>(W + H - 2));
  return Img;
}

Image testimages::checkerboard(int W, int H, int CellSize) {
  if (!SCORPIO_CHECK(CellSize > 0, diag::ErrC::InvalidArgument,
                     "checkerboard: cell size must be positive"))
    CellSize = 1;
  Image Img(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      Img.at(X, Y) = ((X / CellSize + Y / CellSize) % 2) ? 230 : 25;
  return Img;
}

Image testimages::radialSine(int W, int H, double Frequency) {
  Image Img(W, H);
  const double Cx = 0.5 * (W - 1), Cy = 0.5 * (H - 1);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      const double R = std::hypot(X - Cx, Y - Cy);
      Img.at(X, Y) = clampToByte(127.5 + 127.5 * std::sin(R * Frequency));
    }
  return Img;
}

Image testimages::valueNoise(int W, int H, uint64_t Seed, int CellSize) {
  if (!SCORPIO_CHECK(CellSize > 0, diag::ErrC::InvalidArgument,
                     "valueNoise: cell size must be positive"))
    CellSize = 1;
  const int GW = W / CellSize + 2, GH = H / CellSize + 2;
  Random Rng(Seed);
  std::vector<double> Grid(static_cast<size_t>(GW) * GH);
  for (double &G : Grid)
    G = Rng.uniform(0.0, 255.0);
  auto GridAt = [&](int GX, int GY) {
    return Grid[static_cast<size_t>(GY) * GW + GX];
  };
  auto Smooth = [](double T) { return T * T * (3.0 - 2.0 * T); };
  Image Img(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X) {
      const int GX = X / CellSize, GY = Y / CellSize;
      const double TX = Smooth((X % CellSize) / double(CellSize));
      const double TY = Smooth((Y % CellSize) / double(CellSize));
      const double Top =
          GridAt(GX, GY) * (1 - TX) + GridAt(GX + 1, GY) * TX;
      const double Bot =
          GridAt(GX, GY + 1) * (1 - TX) + GridAt(GX + 1, GY + 1) * TX;
      Img.at(X, Y) = clampToByte(Top * (1 - TY) + Bot * TY);
    }
  return Img;
}

Image testimages::scene(int W, int H, uint64_t Seed) {
  Image Grad = gradient(W, H);
  Image Rings = radialSine(W, H, 0.08);
  Image Noise = valueNoise(W, H, Seed, 20);
  Image Img(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      Img.at(X, Y) = clampToByte(0.45 * Grad.at(X, Y) +
                                 0.30 * Rings.at(X, Y) +
                                 0.25 * Noise.at(X, Y));
  // Hard-edged rectangles add step discontinuities for the edge filters.
  Random Rng(Seed ^ 0x9e3779b97f4a7c15ULL);
  for (int R = 0; R < 6; ++R) {
    const int RW = static_cast<int>(Rng.range(W / 16, W / 5));
    const int RH = static_cast<int>(Rng.range(H / 16, H / 5));
    const int X0 = static_cast<int>(Rng.range(0, std::max(0, W - RW - 1)));
    const int Y0 = static_cast<int>(Rng.range(0, std::max(0, H - RH - 1)));
    const uint8_t Shade = static_cast<uint8_t>(Rng.range(10, 245));
    for (int Y = Y0; Y < Y0 + RH; ++Y)
      for (int X = X0; X < X0 + RW; ++X)
        Img.at(X, Y) = static_cast<uint8_t>((Img.at(X, Y) + 3 * Shade) / 4);
  }
  return Img;
}
