//===- quality/Image.h - Grayscale image container and I/O ----------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An 8-bit grayscale image container with PGM (P5/P2) I/O, plus
/// deterministic synthetic image generators that stand in for the
/// image-compression benchmark set the paper profiles Sobel/DCT/Fisheye
/// with (reference [5]; see DESIGN.md Substitutions).
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_QUALITY_IMAGE_H
#define SCORPIO_QUALITY_IMAGE_H

#include "support/Diag.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace scorpio {

/// Row-major 8-bit grayscale image.
class Image {
public:
  Image() = default;
  /// Non-positive dimensions record a structured diagnostic and produce
  /// the empty image (a negative width cast to size_t would otherwise
  /// request a near-2^64 allocation in Release builds).
  Image(int Width, int Height, uint8_t Fill = 0) {
    if (!SCORPIO_CHECK(Width > 0 && Height > 0, diag::ErrC::InvalidArgument,
                       "Image: non-positive dimensions"))
      return;
    W = Width;
    H = Height;
    Pixels.assign(static_cast<size_t>(Width) * static_cast<size_t>(Height),
                  Fill);
  }

  int width() const { return W; }
  int height() const { return H; }
  size_t size() const { return Pixels.size(); }
  bool empty() const { return Pixels.empty(); }

  uint8_t at(int X, int Y) const {
    assert(inBounds(X, Y) && "pixel out of bounds");
    return Pixels[static_cast<size_t>(Y) * W + X];
  }
  uint8_t &at(int X, int Y) {
    assert(inBounds(X, Y) && "pixel out of bounds");
    return Pixels[static_cast<size_t>(Y) * W + X];
  }

  /// Reads with clamp-to-edge semantics; any coordinates are valid.
  uint8_t clamped(int X, int Y) const;

  bool inBounds(int X, int Y) const {
    return X >= 0 && X < W && Y >= 0 && Y < H;
  }

  const std::vector<uint8_t> &data() const { return Pixels; }
  std::vector<uint8_t> &data() { return Pixels; }

  /// Writes binary PGM (P5); returns false on I/O failure.
  bool writePgm(const std::string &Path) const;

  /// Reads PGM (P5 or P2); returns an empty image on failure.
  static Image readPgm(const std::string &Path);

  /// Reads a binary PPM (P6) color image and converts it to grayscale
  /// with the BT.601 luma weights (0.299 R + 0.587 G + 0.114 B);
  /// returns an empty image on failure.
  static Image readPpmLuma(const std::string &Path);

  /// Reads either format by magic number (P5/P2 grayscale, P6 color via
  /// luma); returns an empty image on failure.
  static Image readAnyLuma(const std::string &Path);

private:
  int W = 0, H = 0;
  std::vector<uint8_t> Pixels;
};

/// Clamps \p X to [0, 255] and rounds to the nearest integer.
uint8_t clampToByte(double X);

namespace testimages {

/// Diagonal luminance gradient.
Image gradient(int W, int H);

/// Checkerboard with \p CellSize-pixel cells — maximal edge content.
Image checkerboard(int W, int H, int CellSize = 16);

/// Concentric sine rings — smooth content with all orientations.
Image radialSine(int W, int H, double Frequency = 0.15);

/// Smooth value noise (deterministic in \p Seed) — natural-image-like
/// mid-frequency content.
Image valueNoise(int W, int H, uint64_t Seed = 42, int CellSize = 24);

/// Composite scene (gradient + rings + noise + hard rectangles); the
/// default profiling/benchmark input.
Image scene(int W, int H, uint64_t Seed = 42);

} // namespace testimages

} // namespace scorpio

#endif // SCORPIO_QUALITY_IMAGE_H
