//===- quality/Metrics.h - Output quality metrics -------------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quality metrics of the paper's evaluation (Section 4.3): Peak
/// Signal-to-Noise Ratio for the imaging benchmarks (higher is better;
/// logarithmic) and relative error for N-Body and BlackScholes (lower is
/// better), always measured against the fully accurate execution.
///
/// Invalid inputs (size mismatches, empty operands) record a structured
/// diagnostic (support/Diag.h) and recover with +inf — "worst possible
/// error" — so quality-driven control loops fail towards full accuracy
/// rather than silently reporting perfect quality.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_QUALITY_METRICS_H
#define SCORPIO_QUALITY_METRICS_H

#include "quality/Image.h"

#include <span>

namespace scorpio {

/// Mean squared error between two equally sized images.
double mseOf(const Image &A, const Image &B);

/// PSNR in dB against peak value 255; +inf for identical images (the
/// paper's plots cap the axis instead).  Returns \p CapDb when the MSE
/// is zero.
double psnrOf(const Image &A, const Image &B, double CapDb = 99.0);

/// Mean squared error between two equally sized vectors.
double mseOf(std::span<const double> A, std::span<const double> B);

/// Mean relative error sum|a-b| / sum|a| (the PARSEC-style aggregate
/// metric); 0 for identical vectors.
double relativeErrorOf(std::span<const double> A, std::span<const double> B);

/// Largest elementwise relative error max |a-b| / max(|a|, eps).
double maxRelativeErrorOf(std::span<const double> A,
                          std::span<const double> B);

} // namespace scorpio

#endif // SCORPIO_QUALITY_METRICS_H
