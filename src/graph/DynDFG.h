//===- graph/DynDFG.h - Significance-annotated dynamic data flow graph ----===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-processing side of Algorithm 1.  A DynDFG is built from a
/// recorded Tape together with per-node significances (step S3 output),
/// then:
///
///  * simplify() — step S4 — collapses anti-dependency aggregation chains
///    (`res = res + term[i]`) so that pure accumulation does not count as
///    "computation" (Figure 3a -> 3b);
///  * computeLevels() assigns each node its BFS distance from the output
///    nodes (outputs are level 0, Figure 2);
///  * findSignificanceVarianceLevel() — step S5 — walks levels from the
///    outputs towards the inputs and returns the first level whose node
///    significances have statistical variance above delta: the level at
///    which the code should be partitioned into tasks of different
///    significance;
///  * truncatedAbove() implements G.removeAbove(L+1) from the paper's
///    pseudocode.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_GRAPH_DYNDFG_H
#define SCORPIO_GRAPH_DYNDFG_H

#include "support/Diag.h"
#include "tape/Tape.h"

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace scorpio {

/// One vertex of the (possibly simplified) DynDFG.
struct DfgNode {
  OpKind Kind = OpKind::Input;
  Interval Value;
  /// Raw significance S_y(u) = w([u] * grad_[u][y]) (Eq. 11).
  double Significance = 0.0;
  /// BFS distance from the outputs; -1 for nodes that do not reach any
  /// output (dead code).
  int Level = -1;
  /// User-facing name when the node was registered via
  /// INPUT/INTERMEDIATE/OUTPUT; empty otherwise.
  std::string Label;
  bool IsOutput = false;
  bool Alive = true;
  /// Ids (into DynDFG::node()) of the operand nodes.
  std::vector<NodeId> Preds;
  /// Ids of consumer nodes (derived from Preds).
  std::vector<NodeId> Succs;
};

/// Significance-annotated DAG with the Algorithm-1 transformations.
class DynDFG {
public:
  DynDFG() = default;

  /// Builds the graph from a tape.  \p Significance must have one entry
  /// per tape node; \p Labels maps tape node ids to user names;
  /// \p Outputs lists the registered output nodes.
  static DynDFG fromTape(const Tape &T,
                         const std::vector<double> &Significance,
                         const std::map<NodeId, std::string> &Labels,
                         const std::vector<NodeId> &Outputs);

  size_t size() const { return Nodes.size(); }
  size_t numAlive() const;

  /// True iff \p Id names a node of this graph.  Ids also arrive from
  /// callers (task suggestions, tooling), so node() live-checks them and
  /// recovers with a neutral fallback instead of reading out of bounds
  /// in Release builds.
  bool isValidNode(NodeId Id) const {
    return Id >= 0 && static_cast<size_t>(Id) < Nodes.size();
  }

  const DfgNode &node(NodeId Id) const {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "DynDFG::node: node id out of range"))
      return fallbackNode();
    return Nodes[static_cast<size_t>(Id)];
  }
  DfgNode &node(NodeId Id) {
    if (!SCORPIO_CHECK(isValidNode(Id), diag::ErrC::OutOfRange,
                       "DynDFG::node: node id out of range"))
      return fallbackNode();
    return Nodes[static_cast<size_t>(Id)];
  }

  /// Step S4: collapse aggregation chains.  A node v is collapsed into
  /// its unique consumer s when v's operation is accumulative, v has
  /// exactly one consumer, and s performs the same operation.  The
  /// non-chain operands of collapsed nodes re-attach to the surviving
  /// chain head.  Recomputes levels afterwards.
  void simplify();

  /// Recomputes Level for every alive node: outputs are level 0; every
  /// other node is 1 + the minimum level of its alive consumers (BFS).
  void computeLevels();

  /// Height of the graph: 1 + the maximum level of any alive node.
  int height() const;

  /// Ids of all alive nodes with Level == L, in id order.
  std::vector<NodeId> nodesAtLevel(int L) const;

  /// Significances of all alive nodes at level \p L.
  std::vector<double> significancesAtLevel(int L) const;

  /// Step S5: returns the smallest level L >= 1 whose significances have
  /// population variance > \p Delta, or -1 when no such level exists
  /// (all levels are (almost) equally significant down to the inputs).
  ///
  /// \p Divisor normalizes each significance as S / Divisor before the
  /// variance test — computing exactly what a scratch copy of the graph
  /// with scaled significances would, without materializing the copy.
  int findSignificanceVarianceLevel(double Delta,
                                    double Divisor = 1.0) const;

  /// The paper's G.removeAbove(L+1): returns a copy containing only the
  /// alive nodes with 0 <= Level <= MaxLevel.
  DynDFG truncatedAbove(int MaxLevel) const;

  /// Emits the graph in Graphviz DOT format; node labels show the op,
  /// any user name, and the significance.
  void writeDot(std::ostream &OS) const;

private:
  /// Neutral scratch node returned by node() when the id check fails:
  /// dead (Alive = false) so traversals skip it, re-zeroed on every
  /// request so writes through the mutable overload cannot leak between
  /// failures.  Thread-local because ParallelAnalysis shards query
  /// graphs concurrently.
  static DfgNode &fallbackNode() {
    thread_local DfgNode Fallback;
    Fallback = DfgNode();
    Fallback.Alive = false;
    return Fallback;
  }

  std::vector<DfgNode> Nodes;
};

} // namespace scorpio

#endif // SCORPIO_GRAPH_DYNDFG_H
