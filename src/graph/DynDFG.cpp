//===- graph/DynDFG.cpp - DynDFG simplification and level analysis -------===//

#include "graph/DynDFG.h"

#include "support/Dot.h"
#include "support/Statistics.h"

#include <algorithm>
#include <deque>
#include <sstream>

using namespace scorpio;

DynDFG DynDFG::fromTape(const Tape &T,
                        const std::vector<double> &Significance,
                        const std::map<NodeId, std::string> &Labels,
                        const std::vector<NodeId> &Outputs) {
  DynDFG G;
  SCORPIO_REQUIRE(Significance.size() == T.size(), diag::ErrC::SizeMismatch,
                  "DynDFG::fromTape: need one significance per tape node", G);
  G.Nodes.resize(T.size());
  for (size_t I = 0; I != T.size(); ++I) {
    const NodeId Id = static_cast<NodeId>(I);
    DfgNode &DN = G.Nodes[I];
    DN.Kind = T.kind(Id);
    DN.Value = T.value(Id);
    DN.Significance = Significance[I];
    for (unsigned A = 0, N = T.numArgs(Id); A != N; ++A)
      DN.Preds.push_back(T.arg(Id, A));
  }
  for (const auto &[Id, Name] : Labels)
    G.Nodes[static_cast<size_t>(Id)].Label = Name;
  for (NodeId Out : Outputs)
    G.Nodes[static_cast<size_t>(Out)].IsOutput = true;
  // Derive successor lists.
  for (size_t I = 0; I != G.Nodes.size(); ++I)
    for (NodeId P : G.Nodes[I].Preds)
      G.Nodes[static_cast<size_t>(P)].Succs.push_back(
          static_cast<NodeId>(I));
  G.computeLevels();
  return G;
}

size_t DynDFG::numAlive() const {
  size_t N = 0;
  for (const DfgNode &DN : Nodes)
    if (DN.Alive)
      ++N;
  return N;
}

void DynDFG::simplify() {
  const size_t N = Nodes.size();
  // A node collapses forward into its unique same-op consumer.  Inputs
  // and registered outputs always survive.
  std::vector<bool> Dead(N, false);
  for (size_t I = 0; I != N; ++I) {
    const DfgNode &V = Nodes[I];
    if (!V.Alive || V.IsOutput || V.Kind == OpKind::Input)
      continue;
    if (!isAccumulativeOp(V.Kind) || V.Succs.size() != 1)
      continue;
    const DfgNode &S = Nodes[static_cast<size_t>(V.Succs[0])];
    if (S.Alive && S.Kind == V.Kind)
      Dead[I] = true;
  }

  // Head of a dead node: follow the unique-consumer chain until an alive
  // node is reached.
  auto HeadOf = [&](NodeId Id) {
    while (Dead[static_cast<size_t>(Id)])
      Id = Nodes[static_cast<size_t>(Id)].Succs[0];
    return Id;
  };

  // Rebuild predecessor lists: each alive node keeps its non-dead preds;
  // the external operands of every collapsed chain attach to the head.
  std::vector<std::vector<NodeId>> NewPreds(N);
  for (size_t I = 0; I != N; ++I) {
    if (!Nodes[I].Alive)
      continue;
    const NodeId Target =
        Dead[I] ? HeadOf(static_cast<NodeId>(I)) : static_cast<NodeId>(I);
    for (NodeId P : Nodes[I].Preds) {
      if (Dead[static_cast<size_t>(P)])
        continue; // chain-internal edge
      NewPreds[static_cast<size_t>(Target)].push_back(P);
    }
  }

  for (size_t I = 0; I != N; ++I) {
    if (Dead[I]) {
      Nodes[I].Alive = false;
      // Preserve a user label by moving it to the chain head if the head
      // is unlabeled (e.g. intermediate accumulator snapshots).
      const NodeId H = HeadOf(static_cast<NodeId>(I));
      if (!Nodes[I].Label.empty() &&
          Nodes[static_cast<size_t>(H)].Label.empty())
        Nodes[static_cast<size_t>(H)].Label = Nodes[I].Label;
      Nodes[I].Preds.clear();
      Nodes[I].Succs.clear();
      continue;
    }
    // Deduplicate while preserving order.
    std::vector<NodeId> Unique;
    for (NodeId P : NewPreds[I])
      if (std::find(Unique.begin(), Unique.end(), P) == Unique.end())
        Unique.push_back(P);
    Nodes[I].Preds = std::move(Unique);
    Nodes[I].Succs.clear();
  }
  for (size_t I = 0; I != N; ++I)
    if (Nodes[I].Alive)
      for (NodeId P : Nodes[I].Preds)
        Nodes[static_cast<size_t>(P)].Succs.push_back(
            static_cast<NodeId>(I));

  computeLevels();
}

void DynDFG::computeLevels() {
  std::deque<NodeId> Queue;
  for (size_t I = 0; I != Nodes.size(); ++I) {
    Nodes[I].Level = -1;
    if (Nodes[I].Alive && Nodes[I].IsOutput) {
      Nodes[I].Level = 0;
      Queue.push_back(static_cast<NodeId>(I));
    }
  }
  while (!Queue.empty()) {
    const NodeId V = Queue.front();
    Queue.pop_front();
    const int NextLevel = Nodes[static_cast<size_t>(V)].Level + 1;
    for (NodeId P : Nodes[static_cast<size_t>(V)].Preds) {
      DfgNode &PN = Nodes[static_cast<size_t>(P)];
      if (!PN.Alive || PN.Level != -1)
        continue;
      PN.Level = NextLevel;
      Queue.push_back(P);
    }
  }
}

int DynDFG::height() const {
  int H = 0;
  for (const DfgNode &DN : Nodes)
    if (DN.Alive)
      H = std::max(H, DN.Level + 1);
  return H;
}

std::vector<NodeId> DynDFG::nodesAtLevel(int L) const {
  std::vector<NodeId> Ids;
  for (size_t I = 0; I != Nodes.size(); ++I)
    if (Nodes[I].Alive && Nodes[I].Level == L)
      Ids.push_back(static_cast<NodeId>(I));
  return Ids;
}

std::vector<double> DynDFG::significancesAtLevel(int L) const {
  std::vector<double> Sig;
  for (NodeId Id : nodesAtLevel(L))
    Sig.push_back(node(Id).Significance);
  return Sig;
}

int DynDFG::findSignificanceVarianceLevel(double Delta,
                                          double Divisor) const {
  const int H = height();
  for (int L = 1; L < H; ++L) {
    std::vector<double> Sig = significancesAtLevel(L);
    if (Sig.size() < 2)
      continue;
    if (Divisor != 1.0)
      for (double &S : Sig)
        S /= Divisor;
    if (variance(Sig) > Delta)
      return L;
  }
  return -1;
}

DynDFG DynDFG::truncatedAbove(int MaxLevel) const {
  DynDFG G;
  G.Nodes = Nodes;
  for (DfgNode &DN : G.Nodes) {
    if (!DN.Alive)
      continue;
    if (DN.Level < 0 || DN.Level > MaxLevel)
      DN.Alive = false;
  }
  // Drop edges into removed nodes.
  for (DfgNode &DN : G.Nodes) {
    if (!DN.Alive) {
      DN.Preds.clear();
      DN.Succs.clear();
      continue;
    }
    auto IsDead = [&](NodeId Id) {
      return !G.Nodes[static_cast<size_t>(Id)].Alive;
    };
    DN.Preds.erase(std::remove_if(DN.Preds.begin(), DN.Preds.end(), IsDead),
                   DN.Preds.end());
    DN.Succs.erase(std::remove_if(DN.Succs.begin(), DN.Succs.end(), IsDead),
                   DN.Succs.end());
  }
  return G;
}

void DynDFG::writeDot(std::ostream &OS) const {
  DotWriter W("DynDFG");
  for (size_t I = 0; I != Nodes.size(); ++I) {
    const DfgNode &DN = Nodes[I];
    if (!DN.Alive)
      continue;
    std::ostringstream Label;
    if (!DN.Label.empty())
      Label << DN.Label << "\\n";
    Label << opKindName(DN.Kind) << "\\nS=" << DN.Significance;
    std::string Attrs =
        "label=\"" + DotWriter::escape(Label.str()) + "\", shape=box";
    if (DN.IsOutput)
      Attrs += ", style=bold";
    if (DN.Kind == OpKind::Input)
      Attrs += ", style=filled, fillcolor=lightgrey";
    W.addNode("n" + std::to_string(I), Attrs);
  }
  for (size_t I = 0; I != Nodes.size(); ++I) {
    if (!Nodes[I].Alive)
      continue;
    for (NodeId P : Nodes[I].Preds)
      W.addEdge("n" + std::to_string(P), "n" + std::to_string(I));
  }
  W.write(OS);
}
