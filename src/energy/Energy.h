//===- energy/Energy.h - Energy accounting substitute for RAPL ------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper measures energy with hardware counters on a Xeon E5-2695 v3.
/// Neither that machine nor RAPL access is available here, so this module
/// provides two proxies (see DESIGN.md, Substitutions):
///
///  * a *time model*: energy = wall-clock seconds x constant package
///    power — tracks real computation savings on the host machine;
///  * an *operation-cost model*: kernels report abstract work units
///    (roughly, weighted flop counts) to a thread-safe WorkMeter; energy
///    = units x joules-per-unit — bit-deterministic across machines.
///
/// Both are monotone in the amount of work executed, which is what the
/// paper's energy results measure (approximated/dropped tasks do less
/// work), so win/lose orderings and relative-reduction bands carry over.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_ENERGY_ENERGY_H
#define SCORPIO_ENERGY_ENERGY_H

#include "support/Timer.h"

#include <atomic>
#include <cstdint>

namespace scorpio {

/// Scaling constants of the two proxies.
struct EnergyModelParams {
  /// Package power of the modeled CPU under load (W).  The paper's Xeon
  /// E5-2695 v3 has a 120 W TDP; full-system draw under the paper's
  /// workloads is higher, but only ratios matter for the reproduction.
  double PackagePowerWatts = 120.0;
  /// Joules charged per abstract work unit in the operation-cost model.
  double JoulesPerUnit = 20e-9;
};

/// Thread-safe accumulator of abstract work units.
///
/// Units are stored as an integer count of nano-units so the accumulation
/// is a single atomic add.
class WorkMeter {
public:
  /// Adds \p Units (may be fractional).
  void add(double Units) {
    Nano.fetch_add(static_cast<int64_t>(Units * 1e3),
                   std::memory_order_relaxed);
  }

  /// Total units accumulated since construction or reset().
  double units() const {
    return static_cast<double>(Nano.load(std::memory_order_relaxed)) * 1e-3;
  }

  void reset() { Nano.store(0, std::memory_order_relaxed); }

  /// Process-wide meter used by the benchmark kernels.
  static WorkMeter &global();

private:
  std::atomic<int64_t> Nano{0};
};

/// What one measured region consumed.
struct EnergyReport {
  double Seconds = 0.0;
  double WorkUnits = 0.0;

  /// Energy under the time model.
  double timeModelJoules(const EnergyModelParams &P = {}) const {
    return Seconds * P.PackagePowerWatts;
  }

  /// Energy under the operation-cost model (deterministic).
  double opModelJoules(const EnergyModelParams &P = {}) const {
    return WorkUnits * P.JoulesPerUnit;
  }
};

/// Scope-style probe: construct before the region, call report() after.
///
/// \code
///   EnergyProbe Probe;
///   runKernel();
///   EnergyReport R = Probe.report();
/// \endcode
class EnergyProbe {
public:
  EnergyProbe() : StartUnits(WorkMeter::global().units()) {}

  /// Seconds and work units consumed since construction.
  EnergyReport report() const {
    EnergyReport R;
    R.Seconds = Watch.seconds();
    R.WorkUnits = WorkMeter::global().units() - StartUnits;
    return R;
  }

private:
  Timer Watch;
  double StartUnits;
};

} // namespace scorpio

#endif // SCORPIO_ENERGY_ENERGY_H
