//===- energy/Energy.cpp - Energy accounting ------------------------------===//

#include "energy/Energy.h"

using namespace scorpio;

WorkMeter &WorkMeter::global() {
  static WorkMeter Meter;
  return Meter;
}
