//===- apps/blackscholes/BlackScholes.h - Option pricing benchmark --------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The BlackScholes benchmark of Section 4.1.5 (from PARSEC): pricing a
/// portfolio of European options with the Black-Scholes closed form,
///
///   call = S * N(d1) - K * e^(-rT) * N(d2),
///   d1 = (log(S/K) + (r + v^2/2) T) / (v sqrt(T)),   d2 = d1 - v sqrt(T).
///
/// The significance analysis decomposes the per-option computation into
/// four blocks — A: the d1/d2 core, B: the two CNDF evaluations, C: the
/// discount factor e^(-rT), D: sqrt(T) — and finds
/// sig(A) > sig(B) >> sig(C) > sig(D); accordingly, the approximate task
/// version replaces only the least-significant C and D (and the CNDF's
/// inner exp) with crude fast-math variants.
///
/// Loop perforation is NOT applicable to this benchmark (no loop inside
/// a single option's price — paper Section 4.2), which the benchmark
/// harness reports as such.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_BLACKSCHOLES_BLACKSCHOLES_H
#define SCORPIO_APPS_BLACKSCHOLES_BLACKSCHOLES_H

#include "core/Analysis.h"
#include "core/ParallelAnalysis.h"
#include "runtime/TaskRuntime.h"

#include <vector>

namespace scorpio {
namespace apps {

/// One European option.
struct Option {
  double S;  ///< Spot price.
  double K;  ///< Strike.
  double R;  ///< Risk-free rate.
  double V;  ///< Volatility.
  double T;  ///< Time to expiry (years).
  bool IsCall = true;
};

/// Deterministic synthetic portfolio within PARSEC-like parameter ranges
/// (substitution for the PARSEC input files; see DESIGN.md).
std::vector<Option> generatePortfolio(size_t N, uint64_t Seed = 2016);

/// Accurate price (erf-based normal CDF).
double priceOption(const Option &Opt);

/// Approximate price: blocks C (discount exp) and D (sqrt) and the CNDF
/// exp use the crude "faster" tier of src/fastmath.
double priceOptionApprox(const Option &Opt);

/// Prices the whole portfolio accurately (plain loop).
std::vector<double> blackscholesReference(const std::vector<Option> &Opts);

/// Task version: one task per chunk of options, uniform significance
/// (the ratio knob directly selects the accurately priced fraction).
std::vector<double> blackscholesTasks(rt::TaskRuntime &RT,
                                      const std::vector<Option> &Opts,
                                      double Ratio, size_t ChunkSize = 256);

/// Block significances of one option's pricing.
struct BlackScholesBlockSignificance {
  double A = 0.0; ///< d1/d2 core.
  double B = 0.0; ///< CNDF evaluations.
  double C = 0.0; ///< Discount factor.
  double D = 0.0; ///< sqrt(T).
  AnalysisResult Result;
};

/// Analyses one option with every market input ranging over
/// [v*(1-RelWidth), v*(1+RelWidth)] — the profile-driven data range.
/// Uses the WidthTimesDerivative significance metric: under the raw
/// Eq.-11 worst-case product, large point values (the discount factor,
/// sqrt(T)) absorb adjoint width and mask the ranking — the
/// overestimation the paper itself cautions about.  Expect
/// sig(A) > sig(B) >> sig(C), sig(D).
BlackScholesBlockSignificance
analyseBlackScholes(const Option &Center, double RelWidth = 0.15);

/// Records one option's pricing pipeline (S1-S3, with the block
/// intermediates D/C/A/B/B2 and the "price" output) into the innermost
/// live Analysis.  Shared by analyseBlackScholes and the sharded driver.
void recordBlackScholes(const Option &Center, double RelWidth = 0.15);

/// Per-option block significances of a sharded portfolio analysis.
struct BlackScholesPortfolioSignificance {
  /// One entry per option, in portfolio order; each matches
  /// analyseBlackScholes on that option exactly (the Result member of
  /// the per-option entries is left empty — per-shard reports live in
  /// Result.shards()).
  std::vector<BlackScholesBlockSignificance> PerOption;
  ParallelAnalysisResult Result;
};

/// Analyses every option of \p Centers as one ParallelAnalysis shard
/// ("opt<i>") over \p NumThreads pool workers (0 = hardware
/// concurrency).  Deterministic: the merged result is identical for any
/// thread count.
BlackScholesPortfolioSignificance
analyseBlackScholesSharded(const std::vector<Option> &Centers,
                           double RelWidth = 0.15, unsigned NumThreads = 0);

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_BLACKSCHOLES_BLACKSCHOLES_H
