//===- apps/blackscholes/BlackScholes.cpp - Option pricing benchmark -----===//

#include "apps/blackscholes/BlackScholes.h"

#include "energy/Energy.h"
#include "fastmath/FastMath.h"
#include "support/Random.h"

#include <cmath>

using namespace scorpio;
using namespace scorpio::apps;

namespace {

constexpr double AccurateUnits = 100.0; // per option
constexpr double ApproxUnits = 40.0;

/// Standard normal CDF via erf, templated for analysis.
template <typename T> T cndf(const T &X) {
  using std::erf;
  static const double InvSqrt2 = 0.70710678118654752440;
  return 0.5 * (erf(X * InvSqrt2) + 1.0);
}

} // namespace

std::vector<Option> scorpio::apps::generatePortfolio(size_t N,
                                                     uint64_t Seed) {
  Random Rng(Seed);
  std::vector<Option> Opts;
  Opts.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    Option O;
    O.S = Rng.uniform(25.0, 175.0);
    O.K = O.S * Rng.uniform(0.6, 1.4);
    O.R = Rng.uniform(0.005, 0.10);
    O.V = Rng.uniform(0.10, 0.65);
    O.T = Rng.uniform(0.1, 4.0);
    O.IsCall = Rng.uniform() < 0.5;
    Opts.push_back(O);
  }
  return Opts;
}

double scorpio::apps::priceOption(const Option &Opt) {
  const double SqrtT = std::sqrt(Opt.T);                       // block D
  const double Disc = std::exp(-Opt.R * Opt.T);                // block C
  const double D1 = (std::log(Opt.S / Opt.K) +
                     (Opt.R + 0.5 * Opt.V * Opt.V) * Opt.T) /
                    (Opt.V * SqrtT);                           // block A
  const double D2 = D1 - Opt.V * SqrtT;
  const double Nd1 = cndf<double>(D1);                         // block B
  const double Nd2 = cndf<double>(D2);
  const double Call = Opt.S * Nd1 - Opt.K * Disc * Nd2;
  if (Opt.IsCall)
    return Call;
  // Put-call parity.
  return Call - Opt.S + Opt.K * Disc;
}

double scorpio::apps::priceOptionApprox(const Option &Opt) {
  using namespace scorpio::fastmath;
  // Only the analysis-least-significant blocks C and D use the crude
  // "faster" tier (Section 4.1.5); block B keeps the near-accurate fast
  // CNDF and block A stays exact.
  const double SqrtT = sqrtFaster(Opt.T);                      // block D~
  const double Disc = expFaster(-Opt.R * Opt.T);               // block C~
  const double D1 = (std::log(Opt.S / Opt.K) +
                     (Opt.R + 0.5 * Opt.V * Opt.V) * Opt.T) /
                    (Opt.V * SqrtT);
  const double D2 = D1 - Opt.V * SqrtT;
  const double Nd1 = cndfFast(D1);                             // block B
  const double Nd2 = cndfFast(D2);
  const double Call = Opt.S * Nd1 - Opt.K * Disc * Nd2;
  if (Opt.IsCall)
    return Call;
  return Call - Opt.S + Opt.K * Disc;
}

std::vector<double>
scorpio::apps::blackscholesReference(const std::vector<Option> &Opts) {
  std::vector<double> Prices(Opts.size());
  for (size_t I = 0; I != Opts.size(); ++I)
    Prices[I] = priceOption(Opts[I]);
  WorkMeter::global().add(AccurateUnits * static_cast<double>(Opts.size()));
  return Prices;
}

std::vector<double>
scorpio::apps::blackscholesTasks(rt::TaskRuntime &RT,
                                 const std::vector<Option> &Opts,
                                 double Ratio, size_t ChunkSize) {
  assert(ChunkSize > 0 && "chunk must hold options");
  std::vector<double> Prices(Opts.size(), 0.0);
  for (size_t Begin = 0; Begin < Opts.size(); Begin += ChunkSize) {
    const size_t End = std::min(Begin + ChunkSize, Opts.size());
    rt::TaskOptions TOpts;
    TOpts.Significance = 0.5; // uniform: the ratio knob picks the split
    TOpts.Label = "blackscholes";
    TOpts.ApproxFn = [&, Begin, End] {
      for (size_t I = Begin; I != End; ++I)
        Prices[I] = priceOptionApprox(Opts[I]);
      WorkMeter::global().add(ApproxUnits *
                              static_cast<double>(End - Begin));
    };
    RT.spawn(
        [&, Begin, End] {
          for (size_t I = Begin; I != End; ++I)
            Prices[I] = priceOption(Opts[I]);
          WorkMeter::global().add(AccurateUnits *
                                  static_cast<double>(End - Begin));
        },
        std::move(TOpts));
  }
  RT.taskwait("blackscholes", Ratio);
  return Prices;
}

void scorpio::apps::recordBlackScholes(const Option &Center,
                                       double RelWidth) {
  assert(RelWidth > 0.0 && RelWidth < 1.0 && "bad relative width");
  Analysis &A = Analysis::current();
  A.tape().reserve(64);
  auto In = [&](const char *Name, double V) {
    return A.input(Name, V * (1.0 - RelWidth), V * (1.0 + RelWidth));
  };
  IAValue S = In("spot", Center.S);
  IAValue K = In("strike", Center.K);
  IAValue R = In("rate", Center.R);
  IAValue V = In("vol", Center.V);
  IAValue T = In("expiry", Center.T);

  IAValue SqrtT = sqrt(T); // block D
  A.registerIntermediate(SqrtT, "D");
  IAValue Disc = exp(-R * T); // block C
  A.registerIntermediate(Disc, "C");
  IAValue D1 = (log(S / K) + (R + 0.5 * V * V) * T) / (V * SqrtT); // A
  A.registerIntermediate(D1, "A");
  IAValue D2 = D1 - V * SqrtT;
  IAValue Nd1 = cndf<IAValue>(D1); // block B
  A.registerIntermediate(Nd1, "B");
  IAValue Nd2 = cndf<IAValue>(D2);
  A.registerIntermediate(Nd2, "B2");
  IAValue Price = S * Nd1 - K * Disc * Nd2;
  A.registerOutput(Price, "price");
}

namespace {

/// Reads the block significances out of one option's AnalysisResult.
BlackScholesBlockSignificance
extractBlockSignificances(const AnalysisResult &R) {
  BlackScholesBlockSignificance Sig;
  auto SigOf = [&](const char *Name) {
    const VariableSignificance *VS = R.find(Name);
    assert(VS && "block not registered");
    return VS->Normalized;
  };
  Sig.A = SigOf("A");
  Sig.B = std::max(SigOf("B"), SigOf("B2"));
  Sig.C = SigOf("C");
  Sig.D = SigOf("D");
  return Sig;
}

} // namespace

BlackScholesBlockSignificance
scorpio::apps::analyseBlackScholes(const Option &Center, double RelWidth) {
  Analysis A;
  recordBlackScholes(Center, RelWidth);

  AnalysisOptions Opts;
  Opts.SignificanceMetric =
      AnalysisOptions::Metric::WidthTimesDerivative;
  const AnalysisResult R = A.analyse(Opts);
  BlackScholesBlockSignificance Sig = extractBlockSignificances(R);
  Sig.Result = R;
  return Sig;
}

BlackScholesPortfolioSignificance
scorpio::apps::analyseBlackScholesSharded(const std::vector<Option> &Centers,
                                          double RelWidth,
                                          unsigned NumThreads) {
  ParallelAnalysis P;
  for (size_t I = 0; I != Centers.size(); ++I) {
    const Option C = Centers[I];
    P.addShard("opt" + std::to_string(I),
               [C, RelWidth] { recordBlackScholes(C, RelWidth); },
               /*TapeSizeHint=*/64);
  }

  AnalysisOptions Opts;
  Opts.SignificanceMetric =
      AnalysisOptions::Metric::WidthTimesDerivative;

  BlackScholesPortfolioSignificance Sig;
  Sig.Result = P.run(Opts, NumThreads);
  Sig.PerOption.reserve(Centers.size());
  for (const ShardResult &S : Sig.Result.shards())
    Sig.PerOption.push_back(extractBlockSignificances(S.Result));
  return Sig;
}
