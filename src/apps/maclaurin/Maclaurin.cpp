//===- apps/maclaurin/Maclaurin.cpp - The paper's running example ---------===//

#include "apps/maclaurin/Maclaurin.h"

#include "core/Macros.h"
#include "energy/Energy.h"
#include "fastmath/FastMath.h"

#include <cassert>
#include <vector>

using namespace scorpio;
using namespace scorpio::apps;

/// Accurate integer power by repeated multiplication — the "task" body of
/// Listing 7.  Linear in I on purpose: the task cost mirrors the term
/// index, as in the paper's pow().
static double powAccurate(double X, int I) {
  double R = 1.0;
  for (int K = 0; K < I; ++K)
    R *= X;
  return R;
}

double scorpio::apps::maclaurinSeries(double X, int N) {
  assert(N > 0 && "series needs at least one term");
  double Result = 0.0;
  for (int I = 0; I < N; ++I) {
    const double Term = powAccurate(X, I);
    Result += Term;
  }
  return Result;
}

AnalysisResult scorpio::apps::analyseMaclaurin(double XCenter,
                                               double HalfWidth, int N) {
  assert(N > 0 && "series needs at least one term");
  Analysis A;
  // One input plus a pow and an accumulation node per term.
  A.tape().reserve(2 * static_cast<size_t>(N) + 4);
  IAValue X;
  A.registerInput(X, "x", XCenter - HalfWidth, XCenter + HalfWidth);
  IAValue Result = 0.0;
  for (int I = 0; I < N; ++I) {
    IAValue Term = pow(X, I);
    A.registerIntermediate(Term, "term" + std::to_string(I));
    Result = Result + Term;
  }
  A.registerOutput(Result, "result");
  return A.analyse();
}

double scorpio::apps::maclaurinTasks(rt::TaskRuntime &RT, double X, int N,
                                     double WaitRatio) {
  assert(N > 0 && "series needs at least one term");
  std::vector<double> Temp(static_cast<size_t>(N), 0.0);
  Temp[0] = 1.0; // pow(x, 0) == 1: significance 0, computed in place
  for (int I = 1; I < N; ++I) {
    double *Term = &Temp[static_cast<size_t>(I)];
    rt::TaskOptions Opts;
    Opts.Significance = maclaurinTaskSignificance(I, N);
    Opts.Label = "maclaurin";
    Opts.ApproxFn = [Term, X, I] {
      *Term = fastmath::powIntFast(X, I);
      WorkMeter::global().add(4.0);
    };
    RT.spawn(
        [Term, X, I] {
          *Term = powAccurate(X, I);
          WorkMeter::global().add(static_cast<double>(I));
        },
        std::move(Opts));
  }
  RT.taskwait("maclaurin", WaitRatio);

  double Result = 0.0;
  for (int I = 0; I < N; ++I)
    Result += Temp[static_cast<size_t>(I)];
  return Result;
}
