//===- apps/maclaurin/Maclaurin.h - The paper's running example -----------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Maclaurin geometric series f(x) = sum_i x^i ~ 1/(1-x) for
/// x in (-1, 1) — the running example of Section 3 (Listings 5-7 and
/// Figure 3).  Three forms are provided:
///
///  * maclaurinSeries      — the original double implementation
///                           (Listing 5);
///  * analyseMaclaurin     — the dco/scorpio-annotated version
///                           (Listing 6), registering every term as an
///                           intermediate so Figure 3 can be regenerated;
///  * maclaurinTasks       — the task-based restructuring (Listing 7)
///                           with per-term significance
///                           (N - i + 1) / (N + 2) and a fast-pow
///                           approximate version.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_MACLAURIN_MACLAURIN_H
#define SCORPIO_APPS_MACLAURIN_MACLAURIN_H

#include "core/Analysis.h"
#include "runtime/TaskRuntime.h"

namespace scorpio {
namespace apps {

/// Listing 5: sum of x^i for i in [0, N).
double maclaurinSeries(double X, int N);

/// Listing 6: evaluates the series over the input range
/// [XCenter - HalfWidth, XCenter + HalfWidth], registering each term
/// as intermediate "term<i>" and the sum as output "result".
AnalysisResult analyseMaclaurin(double XCenter, double HalfWidth, int N);

/// The per-task significance formula of Listing 7 line 14.
inline double maclaurinTaskSignificance(int I, int N) {
  return static_cast<double>(N - I + 1) / static_cast<double>(N + 2);
}

/// Listing 7: one task per term; at taskwait, at least \p WaitRatio of
/// the tasks run the accurate pow, the rest a float fast-pow.  Charges
/// the global WorkMeter.
double maclaurinTasks(rt::TaskRuntime &RT, double X, int N,
                      double WaitRatio);

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_MACLAURIN_MACLAURIN_H
