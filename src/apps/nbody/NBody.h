//===- apps/nbody/NBody.h - Lennard-Jones molecular dynamics --------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The N-Body benchmark of Section 4.1.4: liquid-argon molecular
/// dynamics under the Lennard-Jones pair potential (Eq. 13),
///
///   V(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ],
///
/// integrated with velocity Verlet in reduced units (sigma = eps = m =
/// 1).  The 3D container is partitioned into regions (cells); for each
/// target cell, one task per source region computes the forces its atoms
/// exert on the targets.  Region tasks are tagged with significance
/// decreasing in the distance between the cells — the pattern the
/// significance analysis confirms ("the greater the distance between
/// atom A and atom B, the less the kinematic properties of one affect
/// the other").  The approximate version replaces a far region by its
/// center-of-mass monopole.  Loop perforation (the baseline) skips a
/// fraction of the source atoms in the all-pairs loop.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_NBODY_NBODY_H
#define SCORPIO_APPS_NBODY_NBODY_H

#include "core/Analysis.h"
#include "runtime/TaskRuntime.h"

#include <vector>

namespace scorpio {
namespace apps {

/// Simulation configuration (reduced Lennard-Jones units).
struct NBodyParams {
  int ParticlesPerDim = 7;  ///< Particles are seeded on a jittered lattice.
  double Spacing = 1.35;    ///< Lattice spacing (> 2^(1/6) keeps it tame).
  int CellsPerDim = 3;      ///< Region grid (CellsPerDim^3 regions).
  double Dt = 0.004;
  int Steps = 10;
  uint64_t Seed = 7;
  double InitialTemp = 0.15; ///< Gaussian velocity scale.

  int numParticles() const {
    return ParticlesPerDim * ParticlesPerDim * ParticlesPerDim;
  }
  int numCells() const { return CellsPerDim * CellsPerDim * CellsPerDim; }
};

/// Structure-of-arrays particle state.
struct NBodyState {
  std::vector<double> X, Y, Z;
  std::vector<double> VX, VY, VZ;

  size_t size() const { return X.size(); }
  /// Positions followed by velocities, for the quality metrics.
  std::vector<double> flattened() const;
};

/// Jittered-lattice initial condition (deterministic in Params.Seed).
NBodyState nbodyInit(const NBodyParams &Params);

/// Accurate all-pairs reference simulation (plain loops).
void nbodyReference(NBodyState &State, const NBodyParams &Params);

/// Task significance for a source region at center-distance \p Dist (in
/// cell-size units) from the target cell: 1.0 for the cell itself and
/// its face/edge/corner neighbours, then decaying.
double nbodyRegionSignificance(double Dist);

/// Significance-driven task version; deterministic regardless of thread
/// count (per-(cell, region) force slots with a fixed reduction order).
void nbodyTasks(rt::TaskRuntime &RT, NBodyState &State,
                const NBodyParams &Params, double Ratio);

/// Loop-perforated baseline: each target atom only interacts with an
/// evenly spread Rate fraction of the source atoms.
void nbodyPerforated(NBodyState &State, const NBodyParams &Params,
                     double Rate);

/// Total mechanical energy (kinetic + Lennard-Jones potential) of the
/// state, in reduced units.  Velocity Verlet conserves it approximately;
/// tests bound the drift and use it to gauge approximation damage.
double nbodyTotalEnergy(const NBodyState &State);

/// Significance analysis for the paper's distance claim: for a target
/// atom at the origin and a source atom at distance \p Dist, the
/// significance of the source position for the force on the target.
/// Returns (distance, normalized significance) pairs for the sampled
/// distances.
std::vector<std::pair<double, double>>
analyseNBodyDistanceSignificance(const std::vector<double> &Distances,
                                 double HalfWidth = 0.05);

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_NBODY_NBODY_H
