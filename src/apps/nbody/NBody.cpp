//===- apps/nbody/NBody.cpp - Lennard-Jones molecular dynamics -----------===//

#include "apps/nbody/NBody.h"

#include "energy/Energy.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>

using namespace scorpio;
using namespace scorpio::apps;

namespace {

/// Lennard-Jones pair force (reduced units) of a source atom at relative
/// offset (DX, DY, DZ) from the target; adds the force on the target.
/// Templated so the same kernel runs under analysis.
template <typename T>
void ljForce(const T &DX, const T &DY, const T &DZ, T &FX, T &FY, T &FZ) {
  T R2 = DX * DX + DY * DY + DZ * DZ;
  T Inv2 = 1.0 / R2;
  T Inv6 = Inv2 * Inv2 * Inv2;
  T Coef = 24.0 * (2.0 * Inv6 * Inv6 - Inv6) * Inv2;
  FX = Coef * DX;
  FY = Coef * DY;
  FZ = Coef * DZ;
}

/// Double specialization with a softening floor so that the monopole
/// approximation can never divide by zero.
void ljForceSafe(double DX, double DY, double DZ, double &FX, double &FY,
                 double &FZ, double Scale = 1.0) {
  const double R2 = std::max(DX * DX + DY * DY + DZ * DZ, 0.25);
  const double Inv2 = 1.0 / R2;
  const double Inv6 = Inv2 * Inv2 * Inv2;
  const double Coef = Scale * 24.0 * (2.0 * Inv6 * Inv6 - Inv6) * Inv2;
  FX = Coef * DX;
  FY = Coef * DY;
  FZ = Coef * DZ;
}

struct CellGrid {
  double MinX, MinY, MinZ;
  double CellSize;
  int CellsPerDim;

  int cellOf(double X, double Y, double Z) const {
    auto Index = [&](double V, double Min) {
      const int I = static_cast<int>((V - Min) / CellSize);
      return std::clamp(I, 0, CellsPerDim - 1);
    };
    return (Index(Z, MinZ) * CellsPerDim + Index(Y, MinY)) * CellsPerDim +
           Index(X, MinX);
  }

  /// Center-to-center distance of two cells in cell-size units.
  double cellDistance(int A, int B) const {
    const int AX = A % CellsPerDim, AY = (A / CellsPerDim) % CellsPerDim,
              AZ = A / (CellsPerDim * CellsPerDim);
    const int BX = B % CellsPerDim, BY = (B / CellsPerDim) % CellsPerDim,
              BZ = B / (CellsPerDim * CellsPerDim);
    const double DX = AX - BX, DY = AY - BY, DZ = AZ - BZ;
    return std::sqrt(DX * DX + DY * DY + DZ * DZ);
  }
};

CellGrid makeGrid(const NBodyState &S, int CellsPerDim) {
  CellGrid G;
  G.CellsPerDim = CellsPerDim;
  double MinX = S.X[0], MaxX = S.X[0];
  double MinY = S.Y[0], MaxY = S.Y[0];
  double MinZ = S.Z[0], MaxZ = S.Z[0];
  for (size_t I = 1; I != S.size(); ++I) {
    MinX = std::min(MinX, S.X[I]);
    MaxX = std::max(MaxX, S.X[I]);
    MinY = std::min(MinY, S.Y[I]);
    MaxY = std::max(MaxY, S.Y[I]);
    MinZ = std::min(MinZ, S.Z[I]);
    MaxZ = std::max(MaxZ, S.Z[I]);
  }
  const double Extent = std::max(
      {MaxX - MinX, MaxY - MinY, MaxZ - MinZ, 1e-9});
  G.MinX = MinX;
  G.MinY = MinY;
  G.MinZ = MinZ;
  G.CellSize = Extent / CellsPerDim * (1.0 + 1e-12);
  return G;
}

/// Accurate all-pairs forces (plain loops); charges one unit per pair.
void computeForcesReference(const NBodyState &S, std::vector<double> &FX,
                            std::vector<double> &FY,
                            std::vector<double> &FZ) {
  const size_t N = S.size();
  FX.assign(N, 0.0);
  FY.assign(N, 0.0);
  FZ.assign(N, 0.0);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J != N; ++J) {
      if (I == J)
        continue;
      double GX, GY, GZ;
      ljForce<double>(S.X[I] - S.X[J], S.Y[I] - S.Y[J], S.Z[I] - S.Z[J],
                      GX, GY, GZ);
      FX[I] += GX;
      FY[I] += GY;
      FZ[I] += GZ;
    }
  WorkMeter::global().add(static_cast<double>(N) * (N - 1));
}

void verletStep(NBodyState &S, std::vector<double> &FX,
                std::vector<double> &FY, std::vector<double> &FZ,
                double Dt,
                const std::function<void(const NBodyState &,
                                         std::vector<double> &,
                                         std::vector<double> &,
                                         std::vector<double> &)> &Forces) {
  const size_t N = S.size();
  for (size_t I = 0; I != N; ++I) {
    S.VX[I] += 0.5 * Dt * FX[I];
    S.VY[I] += 0.5 * Dt * FY[I];
    S.VZ[I] += 0.5 * Dt * FZ[I];
    S.X[I] += Dt * S.VX[I];
    S.Y[I] += Dt * S.VY[I];
    S.Z[I] += Dt * S.VZ[I];
  }
  Forces(S, FX, FY, FZ);
  for (size_t I = 0; I != N; ++I) {
    S.VX[I] += 0.5 * Dt * FX[I];
    S.VY[I] += 0.5 * Dt * FY[I];
    S.VZ[I] += 0.5 * Dt * FZ[I];
  }
}

} // namespace

std::vector<double> NBodyState::flattened() const {
  std::vector<double> Out;
  Out.reserve(6 * size());
  for (const std::vector<double> *V : {&X, &Y, &Z, &VX, &VY, &VZ})
    Out.insert(Out.end(), V->begin(), V->end());
  return Out;
}

NBodyState scorpio::apps::nbodyInit(const NBodyParams &Params) {
  NBodyState S;
  Random Rng(Params.Seed);
  const int PPD = Params.ParticlesPerDim;
  for (int K = 0; K < PPD; ++K)
    for (int J = 0; J < PPD; ++J)
      for (int I = 0; I < PPD; ++I) {
        S.X.push_back(I * Params.Spacing +
                      Rng.uniform(-0.05, 0.05) * Params.Spacing);
        S.Y.push_back(J * Params.Spacing +
                      Rng.uniform(-0.05, 0.05) * Params.Spacing);
        S.Z.push_back(K * Params.Spacing +
                      Rng.uniform(-0.05, 0.05) * Params.Spacing);
        S.VX.push_back(Rng.gaussian(0.0, Params.InitialTemp));
        S.VY.push_back(Rng.gaussian(0.0, Params.InitialTemp));
        S.VZ.push_back(Rng.gaussian(0.0, Params.InitialTemp));
      }
  return S;
}

void scorpio::apps::nbodyReference(NBodyState &State,
                                   const NBodyParams &Params) {
  std::vector<double> FX, FY, FZ;
  computeForcesReference(State, FX, FY, FZ);
  for (int Step = 0; Step < Params.Steps; ++Step)
    verletStep(State, FX, FY, FZ, Params.Dt, computeForcesReference);
}

double scorpio::apps::nbodyRegionSignificance(double Dist) {
  // The cell itself and all 26 neighbours (center distance <= sqrt(3))
  // must always be accurate; beyond that, significance decays with the
  // analysis-confirmed distance law.
  if (Dist <= std::sqrt(3.0) + 1e-9)
    return 1.0;
  return std::min(0.95, 1.75 / (Dist * Dist));
}

void scorpio::apps::nbodyTasks(rt::TaskRuntime &RT, NBodyState &State,
                               const NBodyParams &Params, double Ratio) {
  const size_t N = State.size();
  const int NumCells = Params.numCells();
  std::vector<double> FX(N), FY(N), FZ(N);

  auto Forces = [&](const NBodyState &S, std::vector<double> &OFX,
                    std::vector<double> &OFY, std::vector<double> &OFZ) {
    const CellGrid Grid = makeGrid(S, Params.CellsPerDim);
    std::vector<std::vector<int>> Members(
        static_cast<size_t>(NumCells));
    for (size_t I = 0; I != N; ++I)
      Members[static_cast<size_t>(Grid.cellOf(S.X[I], S.Y[I], S.Z[I]))]
          .push_back(static_cast<int>(I));

    // One force slot per (target cell, source region): deterministic
    // reduction independent of thread interleaving.
    std::vector<std::vector<double>> Slots(
        static_cast<size_t>(NumCells) * NumCells);

    for (int C = 0; C < NumCells; ++C) {
      const std::vector<int> &Targets = Members[static_cast<size_t>(C)];
      if (Targets.empty())
        continue;
      for (int R = 0; R < NumCells; ++R) {
        const std::vector<int> &Sources = Members[static_cast<size_t>(R)];
        if (Sources.empty())
          continue;
        std::vector<double> &Slot =
            Slots[static_cast<size_t>(C) * NumCells + R];
        Slot.assign(Targets.size() * 3, 0.0);

        rt::TaskOptions Opts;
        Opts.Significance =
            nbodyRegionSignificance(Grid.cellDistance(C, R));
        Opts.Label = "nbody.force";
        Opts.ApproxFn = [&S, &Targets, &Sources, &Slot] {
          // Monopole: the whole source region acts as one super-atom at
          // its center of mass.
          double CX = 0.0, CY = 0.0, CZ = 0.0;
          for (int J : Sources) {
            CX += S.X[static_cast<size_t>(J)];
            CY += S.Y[static_cast<size_t>(J)];
            CZ += S.Z[static_cast<size_t>(J)];
          }
          const double Inv = 1.0 / static_cast<double>(Sources.size());
          CX *= Inv;
          CY *= Inv;
          CZ *= Inv;
          for (size_t TI = 0; TI != Targets.size(); ++TI) {
            const size_t I = static_cast<size_t>(Targets[TI]);
            double GX, GY, GZ;
            ljForceSafe(S.X[I] - CX, S.Y[I] - CY, S.Z[I] - CZ, GX, GY, GZ,
                        static_cast<double>(Sources.size()));
            Slot[TI * 3 + 0] = GX;
            Slot[TI * 3 + 1] = GY;
            Slot[TI * 3 + 2] = GZ;
          }
          WorkMeter::global().add(
              static_cast<double>(Targets.size() + Sources.size()));
        };
        RT.spawn(
            [&S, &Targets, &Sources, &Slot] {
              for (size_t TI = 0; TI != Targets.size(); ++TI) {
                const size_t I = static_cast<size_t>(Targets[TI]);
                double AX = 0.0, AY = 0.0, AZ = 0.0;
                for (int J : Sources) {
                  if (static_cast<size_t>(J) == I)
                    continue;
                  double GX, GY, GZ;
                  ljForce<double>(S.X[I] - S.X[static_cast<size_t>(J)],
                                  S.Y[I] - S.Y[static_cast<size_t>(J)],
                                  S.Z[I] - S.Z[static_cast<size_t>(J)],
                                  GX, GY, GZ);
                  AX += GX;
                  AY += GY;
                  AZ += GZ;
                }
                Slot[TI * 3 + 0] = AX;
                Slot[TI * 3 + 1] = AY;
                Slot[TI * 3 + 2] = AZ;
              }
              WorkMeter::global().add(static_cast<double>(Targets.size()) *
                                      Sources.size());
            },
            std::move(Opts));
      }
    }
    RT.taskwait("nbody.force", Ratio);

    OFX.assign(N, 0.0);
    OFY.assign(N, 0.0);
    OFZ.assign(N, 0.0);
    for (int C = 0; C < NumCells; ++C) {
      const std::vector<int> &Targets = Members[static_cast<size_t>(C)];
      for (int R = 0; R < NumCells; ++R) {
        const std::vector<double> &Slot =
            Slots[static_cast<size_t>(C) * NumCells + R];
        if (Slot.empty())
          continue;
        for (size_t TI = 0; TI != Targets.size(); ++TI) {
          const size_t I = static_cast<size_t>(Targets[TI]);
          OFX[I] += Slot[TI * 3 + 0];
          OFY[I] += Slot[TI * 3 + 1];
          OFZ[I] += Slot[TI * 3 + 2];
        }
      }
    }
  };

  Forces(State, FX, FY, FZ);
  for (int Step = 0; Step < Params.Steps; ++Step)
    verletStep(State, FX, FY, FZ, Params.Dt, Forces);
}

void scorpio::apps::nbodyPerforated(NBodyState &State,
                                    const NBodyParams &Params,
                                    double Rate) {
  assert(Rate >= 0.0 && Rate <= 1.0 && "rate out of [0, 1]");
  const size_t N = State.size();
  auto Forces = [&](const NBodyState &S, std::vector<double> &FX,
                    std::vector<double> &FY, std::vector<double> &FZ) {
    FX.assign(N, 0.0);
    FY.assign(N, 0.0);
    FZ.assign(N, 0.0);
    size_t Pairs = 0;
    for (size_t I = 0; I != N; ++I) {
      double Acc = 0.0;
      for (size_t J = 0; J != N; ++J) {
        if (I == J)
          continue;
        // Perforation: skip source iterations evenly per the rate.
        Acc += Rate;
        if (Acc < 1.0 - 1e-12)
          continue;
        Acc -= 1.0;
        double GX, GY, GZ;
        ljForce<double>(S.X[I] - S.X[J], S.Y[I] - S.Y[J], S.Z[I] - S.Z[J],
                        GX, GY, GZ);
        FX[I] += GX;
        FY[I] += GY;
        FZ[I] += GZ;
        ++Pairs;
      }
    }
    WorkMeter::global().add(static_cast<double>(Pairs));
  };
  std::vector<double> FX, FY, FZ;
  Forces(State, FX, FY, FZ);
  for (int Step = 0; Step < Params.Steps; ++Step)
    verletStep(State, FX, FY, FZ, Params.Dt, Forces);
}

double scorpio::apps::nbodyTotalEnergy(const NBodyState &S) {
  const size_t N = S.size();
  double Kinetic = 0.0;
  for (size_t I = 0; I != N; ++I)
    Kinetic += 0.5 * (S.VX[I] * S.VX[I] + S.VY[I] * S.VY[I] +
                      S.VZ[I] * S.VZ[I]);
  double Potential = 0.0;
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J) {
      const double DX = S.X[I] - S.X[J];
      const double DY = S.Y[I] - S.Y[J];
      const double DZ = S.Z[I] - S.Z[J];
      const double R2 = DX * DX + DY * DY + DZ * DZ;
      const double Inv6 = 1.0 / (R2 * R2 * R2);
      Potential += 4.0 * (Inv6 * Inv6 - Inv6);
    }
  return Kinetic + Potential;
}

std::vector<std::pair<double, double>>
scorpio::apps::analyseNBodyDistanceSignificance(
    const std::vector<double> &Distances, double HalfWidth) {
  std::vector<std::pair<double, double>> Out;
  double MaxSig = 0.0;
  for (double D : Distances) {
    assert(D > 2.0 * HalfWidth && "source overlaps the target");
    Analysis A;
    IAValue SX = A.input("sx", D - HalfWidth, D + HalfWidth);
    IAValue SY = A.input("sy", -HalfWidth, HalfWidth);
    IAValue SZ = A.input("sz", -HalfWidth, HalfWidth);
    // Target atom fixed at the origin; force it experiences from the
    // source at (sx, sy, sz).
    IAValue FX, FY, FZ;
    ljForce<IAValue>(0.0 - SX, 0.0 - SY, 0.0 - SZ, FX, FY, FZ);
    A.registerOutput(FX, "fx");
    A.registerOutput(FY, "fy");
    A.registerOutput(FZ, "fz");
    AnalysisOptions Opts;
    Opts.Mode = AnalysisOptions::OutputMode::PerOutput;
    const AnalysisResult R = A.analyse(Opts);
    double Sig = 0.0;
    for (const VariableSignificance &V : R.inputs())
      Sig += V.Significance;
    Out.emplace_back(D, Sig);
    MaxSig = std::max(MaxSig, Sig);
  }
  if (MaxSig > 0.0)
    for (auto &[D, S] : Out)
      S /= MaxSig;
  return Out;
}
