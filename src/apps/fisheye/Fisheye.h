//===- apps/fisheye/Fisheye.h - Fisheye lens correction benchmark ---------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fisheye benchmark of Section 4.1.3: correcting a fisheye-distorted
/// image back to perspective space with two kernels:
///
///  * InverseMapping — maps integer output (perspective) coordinates to
///    real-valued coordinates in the distorted input.  We use a
///    tangent-compression lens model: with r the output radius normalized
///    by the half-diagonal and phi = Strength * pi/2 the lens angle, the
///    distorted radius is s = tan(r * phi) / tan(phi).  Its sensitivity
///    ds/dr grows sharply towards the border, which the significance
///    analysis recovers (Figure 5: border pixels more significant than
///    the center).
///
///  * BicubicInterp — Catmull-Rom interpolation on a 4x4 window around
///    the mapped point.  The analysis finds the inner 2x2 pixel pairs
///    most significant (Figure 6).
///
/// The task version processes BlockW x BlockH output tiles.  The task
/// significance is derived from the analysis pattern (border blocks
/// higher).  The approximate version evaluates InverseMapping only at
/// the four tile corners, bilinearly interpolates source coordinates
/// inside, and samples with bilinear (inner 2x2) interpolation — the
/// paper's "transitive significance" approximation.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_FISHEYE_FISHEYE_H
#define SCORPIO_APPS_FISHEYE_FISHEYE_H

#include "core/Analysis.h"
#include "quality/Image.h"
#include "runtime/TaskRuntime.h"

#include <array>
#include <cmath>
#include <vector>

namespace scorpio {
namespace apps {

/// Lens model parameters.
struct FisheyeParams {
  /// Lens strength in (0, 1): phi = Strength * pi/2.
  double Strength = 0.85;
};

/// InverseMapping, templated over double (execution) and IAValue
/// (analysis).  (X, Y) are output-image coordinates; (SrcX, SrcY) receive
/// the distorted-image coordinates.
template <typename T>
void inverseMapping(const T &X, const T &Y, int W, int H,
                    const FisheyeParams &P, T &SrcX, T &SrcY) {
  using std::sqrt;
  const double Cx = 0.5 * (W - 1), Cy = 0.5 * (H - 1);
  const double HalfDiag = std::sqrt(Cx * Cx + Cy * Cy);
  const double Phi = P.Strength * 1.57079632679489661923;
  const double TanPhi = std::tan(Phi);
  T Nx = (X - Cx) * (1.0 / HalfDiag);
  T Ny = (Y - Cy) * (1.0 / HalfDiag);
  T R = sqrt(Nx * Nx + Ny * Ny);
  // Scale = tan(R*Phi) / (R*tanPhi) via the dedicated dependency-safe
  // primitive: tan(R*Phi)/R as two interval ops explodes near the image
  // center where numerator and denominator are perfectly correlated
  // (paper Section 2.2: special interval algorithms required).
  T Scale = tanOverX(R, Phi) * (1.0 / TanPhi);
  SrcX = Cx + Nx * Scale * HalfDiag;
  SrcY = Cy + Ny * Scale * HalfDiag;
}

/// Catmull-Rom weights for fractional position F in [0, 1).
template <typename T> std::array<T, 4> catmullRomWeights(const T &F) {
  std::array<T, 4> W;
  T F2 = F * F;
  T F3 = F2 * F;
  W[0] = -0.5 * F3 + F2 - 0.5 * F;
  W[1] = 1.5 * F3 - 2.5 * F2 + 1.0;
  W[2] = -1.5 * F3 + 2.0 * F2 + 0.5 * F;
  W[3] = 0.5 * F3 - 0.5 * F2;
  return W;
}

/// The forward lens mapping — the analytic inverse of inverseMapping:
/// maps distorted-image coordinates back to output (perspective)
/// coordinates via r = atan(s * tan(phi)) / phi.  Used by the
/// round-trip property tests and by callers that need to know where a
/// distorted pixel lands.
void forwardMapping(double SrcX, double SrcY, int W, int H,
                    const FisheyeParams &P, double &OutX, double &OutY);

/// BicubicInterp on the 4x4 window around (SrcX, SrcY), double version
/// used by the accurate execution paths.
double bicubicSample(const Image &In, double SrcX, double SrcY);

/// Bilinear 2x2 sample — the approximate interpolation.
double bilinearSample(const Image &In, double SrcX, double SrcY);

/// Fully accurate correction: per-pixel InverseMapping + bicubic.
Image fisheyeReference(const Image &Distorted, const FisheyeParams &P = {});

/// Significance-driven task version over BlockW x BlockH tiles; equals
/// fisheyeReference at Ratio == 1.
Image fisheyeTasks(rt::TaskRuntime &RT, const Image &Distorted,
                   double Ratio, const FisheyeParams &P = {},
                   int BlockW = 128, int BlockH = 64);

/// Loop-perforated baseline: computes only a Rate fraction of output
/// rows, replicating the nearest computed row.
Image fisheyePerforated(const Image &Distorted, double Rate,
                        const FisheyeParams &P = {});

/// Figure 5: significance of InverseMapping per output pixel, sampled on
/// a GridW x GridH lattice; returned row-major, normalized to max 1.
std::vector<double> analyseInverseMappingGrid(int W, int H, int GridW,
                                              int GridH,
                                              const FisheyeParams &P = {});

/// The task significance used for a tile spanning output-normalized radii
/// up to \p MaxR in [0, 1]: grows towards the border, strictly below 1.
inline double fisheyeTileSignificance(double MaxR) {
  return 0.10 + 0.85 * std::min(1.0, MaxR);
}

/// Figure 6: significance of each of the 16 BicubicInterp input pixels
/// for the interpolated value at fractional position (Fx, Fy); row-major
/// 4x4, normalized to max 1.
std::array<double, 16> analyseBicubicWeights(double Fx, double Fy);

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_FISHEYE_FISHEYE_H
