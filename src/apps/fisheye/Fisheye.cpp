//===- apps/fisheye/Fisheye.cpp - Fisheye correction benchmark -----------===//

#include "apps/fisheye/Fisheye.h"

#include "energy/Energy.h"

#include <algorithm>
#include <vector>

using namespace scorpio;
using namespace scorpio::apps;

namespace {

/// Work-unit charges per output pixel.
constexpr double MapUnits = 25.0;       // InverseMapping (tan, sqrt, div)
constexpr double BicubicUnits = 35.0;   // 16-tap Catmull-Rom
constexpr double CoordLerpUnits = 6.0;  // interpolated coordinates
constexpr double BilinearUnits = 10.0;  // 4-tap sample

double accuratePixel(const Image &In, int X, int Y,
                     const FisheyeParams &P) {
  double SrcX, SrcY;
  const double XD = X, YD = Y;
  inverseMapping<double>(XD, YD, In.width(), In.height(), P, SrcX, SrcY);
  return bicubicSample(In, SrcX, SrcY);
}

/// Normalized output radius of pixel (X, Y).
double normRadius(int X, int Y, int W, int H) {
  const double Cx = 0.5 * (W - 1), Cy = 0.5 * (H - 1);
  const double HalfDiag = std::sqrt(Cx * Cx + Cy * Cy);
  return std::hypot(X - Cx, Y - Cy) / HalfDiag;
}

} // namespace

void scorpio::apps::forwardMapping(double SrcX, double SrcY, int W,
                                   int H, const FisheyeParams &P,
                                   double &OutX, double &OutY) {
  const double Cx = 0.5 * (W - 1), Cy = 0.5 * (H - 1);
  const double HalfDiag = std::sqrt(Cx * Cx + Cy * Cy);
  const double Phi = P.Strength * 1.57079632679489661923;
  const double TanPhi = std::tan(Phi);
  const double Nx = (SrcX - Cx) / HalfDiag;
  const double Ny = (SrcY - Cy) / HalfDiag;
  const double S = std::hypot(Nx, Ny);
  if (S < 1e-12) {
    OutX = Cx;
    OutY = Cy;
    return;
  }
  // Invert s = tan(r * phi) / tan(phi):  r = atan(s * tan(phi)) / phi.
  const double R = std::atan(S * TanPhi) / Phi;
  const double Scale = R / S;
  OutX = Cx + Nx * Scale * HalfDiag;
  OutY = Cy + Ny * Scale * HalfDiag;
}

double scorpio::apps::bicubicSample(const Image &In, double SrcX,
                                    double SrcY) {
  const int IX = static_cast<int>(std::floor(SrcX));
  const int IY = static_cast<int>(std::floor(SrcY));
  const double Fx = SrcX - IX, Fy = SrcY - IY;
  const std::array<double, 4> Wx = catmullRomWeights<double>(Fx);
  const std::array<double, 4> Wy = catmullRomWeights<double>(Fy);
  double Sum = 0.0;
  for (int R = 0; R < 4; ++R) {
    double Row = 0.0;
    for (int C = 0; C < 4; ++C)
      Row += Wx[static_cast<size_t>(C)] *
             In.clamped(IX - 1 + C, IY - 1 + R);
    Sum += Wy[static_cast<size_t>(R)] * Row;
  }
  return std::clamp(Sum, 0.0, 255.0);
}

double scorpio::apps::bilinearSample(const Image &In, double SrcX,
                                     double SrcY) {
  const int IX = static_cast<int>(std::floor(SrcX));
  const int IY = static_cast<int>(std::floor(SrcY));
  const double Fx = SrcX - IX, Fy = SrcY - IY;
  const double Top = (1.0 - Fx) * In.clamped(IX, IY) +
                     Fx * In.clamped(IX + 1, IY);
  const double Bot = (1.0 - Fx) * In.clamped(IX, IY + 1) +
                     Fx * In.clamped(IX + 1, IY + 1);
  return std::clamp((1.0 - Fy) * Top + Fy * Bot, 0.0, 255.0);
}

Image scorpio::apps::fisheyeReference(const Image &Distorted,
                                      const FisheyeParams &P) {
  const int W = Distorted.width(), H = Distorted.height();
  Image Out(W, H);
  for (int Y = 0; Y < H; ++Y)
    for (int X = 0; X < W; ++X)
      Out.at(X, Y) = clampToByte(accuratePixel(Distorted, X, Y, P));
  WorkMeter::global().add((MapUnits + BicubicUnits) * W * H);
  return Out;
}

Image scorpio::apps::fisheyeTasks(rt::TaskRuntime &RT,
                                  const Image &Distorted, double Ratio,
                                  const FisheyeParams &P, int BlockW,
                                  int BlockH) {
  assert(BlockW > 0 && BlockH > 0 && "empty tile");
  const int W = Distorted.width(), H = Distorted.height();
  Image Out(W, H);
  for (int Y0 = 0; Y0 < H; Y0 += BlockH)
    for (int X0 = 0; X0 < W; X0 += BlockW) {
      const int X1 = std::min(X0 + BlockW, W);
      const int Y1 = std::min(Y0 + BlockH, H);
      // Border tiles are more sensitive to coordinate imprecision
      // (Figure 5), so they get higher significance.
      const double MaxR = std::max(
          std::max(normRadius(X0, Y0, W, H), normRadius(X1 - 1, Y0, W, H)),
          std::max(normRadius(X0, Y1 - 1, W, H),
                   normRadius(X1 - 1, Y1 - 1, W, H)));
      rt::TaskOptions Opts;
      Opts.Significance = fisheyeTileSignificance(MaxR);
      Opts.Label = "fisheye";
      Opts.ApproxFn = [&, X0, X1, Y0, Y1] {
        // InverseMapping only on a sparse sub-grid (every GridStep
        // pixels, i.e. on the tile border and a few interior lines);
        // interior coordinates are bilinearly interpolated and sampling
        // degrades to bilinear — the paper's InverseMapping-on-the-
        // border-only approximation plus transitive significance for
        // BicubicInterp.
        constexpr int GridStep = 16;
        const int GW = (X1 - 1 - X0) / GridStep + 2;
        const int GH = (Y1 - 1 - Y0) / GridStep + 2;
        std::vector<double> CX(static_cast<size_t>(GW) * GH),
            CY(static_cast<size_t>(GW) * GH);
        for (int J = 0; J < GH; ++J)
          for (int I = 0; I < GW; ++I) {
            const double XD = std::min(X0 + I * GridStep, X1 - 1);
            const double YD = std::min(Y0 + J * GridStep, Y1 - 1);
            inverseMapping<double>(XD, YD, W, H, P,
                                   CX[static_cast<size_t>(J) * GW + I],
                                   CY[static_cast<size_t>(J) * GW + I]);
          }
        for (int Y = Y0; Y < Y1; ++Y) {
          const int GJ = std::min((Y - Y0) / GridStep, GH - 2);
          const double Y0G = Y0 + GJ * GridStep;
          const double Y1G = std::min(Y0 + (GJ + 1) * GridStep, Y1 - 1);
          const double Ty =
              Y1G > Y0G ? (Y - Y0G) / (Y1G - Y0G) : 0.0;
          for (int X = X0; X < X1; ++X) {
            const int GI = std::min((X - X0) / GridStep, GW - 2);
            const double X0G = X0 + GI * GridStep;
            const double X1G = std::min(X0 + (GI + 1) * GridStep, X1 - 1);
            const double Tx =
                X1G > X0G ? (X - X0G) / (X1G - X0G) : 0.0;
            auto At = [&](int J, int I, const std::vector<double> &V) {
              return V[static_cast<size_t>(J) * GW + I];
            };
            const double SrcX =
                (1 - Ty) * ((1 - Tx) * At(GJ, GI, CX) +
                            Tx * At(GJ, GI + 1, CX)) +
                Ty * ((1 - Tx) * At(GJ + 1, GI, CX) +
                      Tx * At(GJ + 1, GI + 1, CX));
            const double SrcY =
                (1 - Ty) * ((1 - Tx) * At(GJ, GI, CY) +
                            Tx * At(GJ, GI + 1, CY)) +
                Ty * ((1 - Tx) * At(GJ + 1, GI, CY) +
                      Tx * At(GJ + 1, GI + 1, CY));
            Out.at(X, Y) =
                clampToByte(bilinearSample(Distorted, SrcX, SrcY));
          }
        }
        WorkMeter::global().add((CoordLerpUnits + BilinearUnits) *
                                    (X1 - X0) * (Y1 - Y0) +
                                static_cast<double>(GW) * GH * MapUnits);
      };
      RT.spawn(
          [&, X0, X1, Y0, Y1] {
            for (int Y = Y0; Y < Y1; ++Y)
              for (int X = X0; X < X1; ++X)
                Out.at(X, Y) =
                    clampToByte(accuratePixel(Distorted, X, Y, P));
            WorkMeter::global().add((MapUnits + BicubicUnits) *
                                    (X1 - X0) * (Y1 - Y0));
          },
          std::move(Opts));
    }
  RT.taskwait("fisheye", Ratio);
  return Out;
}

Image scorpio::apps::fisheyePerforated(const Image &Distorted, double Rate,
                                       const FisheyeParams &P) {
  assert(Rate >= 0.0 && Rate <= 1.0 && "rate out of [0, 1]");
  const int W = Distorted.width(), H = Distorted.height();
  Image Out(W, H);
  int LastComputed = -1;
  double Acc = 0.0;
  for (int Y = 0; Y < H; ++Y) {
    Acc += Rate;
    const bool Execute = Acc >= 1.0 - 1e-12 || (Y == 0 && Rate > 0.0);
    if (Execute)
      Acc -= 1.0;
    if (!Execute) {
      for (int X = 0; X < W; ++X)
        Out.at(X, Y) = LastComputed >= 0 ? Out.at(X, LastComputed) : 0;
      continue;
    }
    for (int X = 0; X < W; ++X)
      Out.at(X, Y) = clampToByte(accuratePixel(Distorted, X, Y, P));
    WorkMeter::global().add((MapUnits + BicubicUnits) * W);
    LastComputed = Y;
  }
  return Out;
}

std::vector<double> scorpio::apps::analyseInverseMappingGrid(
    int W, int H, int GridW, int GridH, const FisheyeParams &P) {
  assert(GridW > 1 && GridH > 1 && "grid too small");
  std::vector<double> Sig(static_cast<size_t>(GridW) * GridH, 0.0);
  double MaxSig = 0.0;
  for (int GY = 0; GY < GridH; ++GY)
    for (int GX = 0; GX < GridW; ++GX) {
      const double PX = GX * (W - 1.0) / (GridW - 1.0);
      const double PY = GY * (H - 1.0) / (GridH - 1.0);
      Analysis A;
      IAValue X = A.input("x", PX - 0.5, PX + 0.5);
      IAValue Y = A.input("y", PY - 0.5, PY + 0.5);
      IAValue SrcX, SrcY;
      inverseMapping<IAValue>(X, Y, W, H, P, SrcX, SrcY);
      A.registerOutput(SrcX, "srcx");
      A.registerOutput(SrcY, "srcy");
      const AnalysisResult R = A.analyse();
      // Per-pixel kernel significance: total output significance — how
      // strongly the mapped coordinates react to coordinate perturbation.
      const double S = R.outputSignificance();
      Sig[static_cast<size_t>(GY) * GridW + GX] = S;
      MaxSig = std::max(MaxSig, S);
    }
  if (MaxSig > 0.0)
    for (double &S : Sig)
      S /= MaxSig;
  return Sig;
}

std::array<double, 16> scorpio::apps::analyseBicubicWeights(double Fx,
                                                            double Fy) {
  assert(Fx >= 0.0 && Fx < 1.0 && Fy >= 0.0 && Fy < 1.0 &&
         "fractional position out of the unit cell");
  Analysis A;
  IAValue Px[16];
  for (int I = 0; I < 16; ++I)
    Px[I] = A.input("p" + std::to_string(I), 96.0, 160.0);

  const std::array<double, 4> Wx = catmullRomWeights<double>(Fx);
  const std::array<double, 4> Wy = catmullRomWeights<double>(Fy);
  IAValue Sum = 0.0;
  for (int R = 0; R < 4; ++R) {
    IAValue Row = 0.0;
    for (int C = 0; C < 4; ++C)
      Row = Row + Px[R * 4 + C] * Wx[static_cast<size_t>(C)];
    Sum = Sum + Row * Wy[static_cast<size_t>(R)];
  }
  A.registerOutput(Sum, "interp");
  const AnalysisResult Res = A.analyse();

  std::array<double, 16> Sig;
  double MaxSig = 0.0;
  for (int I = 0; I < 16; ++I) {
    const VariableSignificance *V = Res.find("p" + std::to_string(I));
    assert(V && "input not registered");
    Sig[static_cast<size_t>(I)] = V->Significance;
    MaxSig = std::max(MaxSig, V->Significance);
  }
  if (MaxSig > 0.0)
    for (double &S : Sig)
      S /= MaxSig;
  return Sig;
}
