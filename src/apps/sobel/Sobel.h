//===- apps/sobel/Sobel.h - Sobel edge filter benchmark -------------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sobel Filter benchmark of Section 4.1.1.  A 3x3 edge detector:
/// Gx/Gy convolutions, magnitude t = sqrt(tx^2 + ty^2), clipped to
/// [0, 255].
///
/// Following the paper's analysis, the convolution is split into three
/// coefficient blocks:
///
///   A — the +-2-weighted taps (E/W for Gx, N/S for Gy),
///   B — the four +-1 corner taps of the row above,
///   C — the four +-1 corner taps of the row below.
///
/// The analysis finds A twice as significant as B or C; the task version
/// tags A tasks with significance 1.0 (always accurate) and B/C with 0.5,
/// approximating them *by dropping* their contribution, exactly as in the
/// paper.  A second task group combines the partial convolutions and
/// always runs accurately.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_SOBEL_SOBEL_H
#define SCORPIO_APPS_SOBEL_SOBEL_H

#include "core/Analysis.h"
#include "core/ParallelAnalysis.h"
#include "quality/Image.h"
#include "runtime/TaskRuntime.h"

namespace scorpio {
namespace apps {

/// Plain sequential, fully accurate Sobel.  Charges the WorkMeter.
Image sobelReference(const Image &In);

/// Significance-driven task version; \p Ratio is the taskwait knob and
/// \p BandRows the task granularity (rows per band).  Equals
/// sobelReference at Ratio == 1.
Image sobelTasks(rt::TaskRuntime &RT, const Image &In, double Ratio,
                 int BandRows = 32);

/// Loop-perforated baseline (Section 4.2): only a \p Rate fraction of
/// rows is computed, evenly spread; skipped rows replicate the nearest
/// computed row.
Image sobelPerforated(const Image &In, double Rate);

/// Significance of the three convolution blocks for one output pixel.
struct SobelBlockSignificance {
  /// Summed (Gx + Gy contribution) significances per block.
  double A = 0.0, B = 0.0, C = 0.0;
  AnalysisResult Result;
};

/// Runs dco/scorpio on the computation of output pixel (X, Y) with every
/// neighborhood pixel treated as an input in [p - HalfWidth,
/// p + HalfWidth].  Expect A ~ 2 * B and B ~ C.
SobelBlockSignificance analyseSobelBlocks(const Image &In, int X, int Y,
                                          double HalfWidth = 8.0);

/// Whole-image block significances from the sharded tile analysis.
struct SobelTileSignificance {
  /// Block significances summed over every analysed pixel of every tile;
  /// the same A ~ 2B ~ 2C ranking as the single-pixel analysis, but
  /// profiled over the full image.
  double A = 0.0, B = 0.0, C = 0.0;
  ParallelAnalysisResult Result;
};

/// Sharded whole-image analysis: the image is cut into TileSize x
/// TileSize tiles and each tile is analysed as one independent
/// ParallelAnalysis shard (its own tape, all tile pixels recorded as one
/// DynDFG with per-pixel gx/gy outputs, PerOutput mode).  Per-pixel
/// block significances match analyseSobelBlocks exactly; the merge is
/// deterministic in tile order for any \p NumThreads.  \p Verify
/// forwards to ParallelAnalysis::run(): each tile's sub-tape is
/// re-verified on its worker and the merged findings land in
/// Result.verification().
SobelTileSignificance
analyseSobelTiles(const Image &In, int TileSize, double HalfWidth = 8.0,
                  unsigned NumThreads = 0,
                  ShardVerification Verify = ShardVerification::Off);

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_SOBEL_SOBEL_H
