//===- apps/sobel/Sobel.cpp - Sobel edge filter benchmark ----------------===//

#include "apps/sobel/Sobel.h"

#include "energy/Energy.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace scorpio;
using namespace scorpio::apps;

namespace {

/// Work-unit charges (abstract op counts per pixel).
constexpr double PartUnitsPerPixel = 4.0;    // one coefficient block
constexpr double CombineUnitsPerPixel = 8.0; // sqrt + clip + sums

/// Per-block partial convolution sums for one pixel.
///
/// Blocks follow Section 4.1.1: A holds the +-2-weighted taps, B and C
/// split the eight +-1 corner taps.  We split them by gradient
/// direction — B is the corner part of Gx, C the corner part of Gy — so
/// each block is zero-mean on flat content and dropping any block
/// degrades gracefully (dropping "the corner taps of one row" would
/// leave an unbalanced sum that saturates the output).
///   A: Gx += 2*E - 2*W             Gy += 2*S - 2*N
///   B: Gx += (NE - NW) + (SE - SW)
///   C:                             Gy += (SW + SE) - (NW + NE)
template <typename T>
void blockA(const T &W, const T &E, const T &N, const T &S, T &Gx, T &Gy) {
  Gx = 2.0 * E - 2.0 * W;
  Gy = 2.0 * S - 2.0 * N;
}

template <typename T>
void blockB(const T &NW, const T &NE, const T &SW, const T &SE, T &Gx,
            T &Gy) {
  Gx = (NE - NW) + (SE - SW);
  Gy = T(0.0);
}

template <typename T>
void blockC(const T &NW, const T &NE, const T &SW, const T &SE, T &Gx,
            T &Gy) {
  Gx = T(0.0);
  Gy = (SW + SE) - (NW + NE);
}

/// Combine step shared by every variant: magnitude + clip.
template <typename T> T combine(const T &Gx, const T &Gy) {
  using std::max;
  using std::min;
  using std::sqrt;
  T Mag = sqrt(Gx * Gx + Gy * Gy);
  return min(max(Mag, T(0.0)), T(255.0));
}

} // namespace

Image scorpio::apps::sobelReference(const Image &In) {
  const int W = In.width(), H = In.height();
  Image Out(W, H);
  for (int Y = 0; Y < H; ++Y) {
    for (int X = 0; X < W; ++X) {
      double GxA, GyA, GxB, GyB, GxC, GyC;
      blockA<double>(In.clamped(X - 1, Y), In.clamped(X + 1, Y),
                     In.clamped(X, Y - 1), In.clamped(X, Y + 1), GxA, GyA);
      blockB<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxB, GyB);
      blockC<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxC, GyC);
      Out.at(X, Y) = clampToByte(
          combine<double>(GxA + GxB + GxC, GyA + GyB + GyC));
    }
  }
  WorkMeter::global().add(
      (3.0 * PartUnitsPerPixel + CombineUnitsPerPixel) * W * H);
  return Out;
}

Image scorpio::apps::sobelTasks(rt::TaskRuntime &RT, const Image &In,
                                double Ratio, int BandRows) {
  assert(BandRows > 0 && "band must contain rows");
  const int W = In.width(), H = In.height();
  const size_t NumPx = static_cast<size_t>(W) * H;
  // Per-block partial gradients; dropped tasks leave zeros, which is the
  // paper's "approximate by dropping the respective computation".
  std::vector<float> Gx[3], Gy[3];
  for (int P = 0; P < 3; ++P) {
    Gx[P].assign(NumPx, 0.0f);
    Gy[P].assign(NumPx, 0.0f);
  }

  for (int Y0 = 0; Y0 < H; Y0 += BandRows) {
    const int Y1 = std::min(Y0 + BandRows, H);
    auto SpawnPart = [&](int P, double Significance, auto Body) {
      rt::TaskOptions Opts;
      Opts.Significance = Significance;
      Opts.Label = "sobel.conv";
      RT.spawn(
          [&, P, Y0, Y1, Body] {
            for (int Y = Y0; Y < Y1; ++Y)
              for (int X = 0; X < W; ++X) {
                double GxV, GyV;
                Body(X, Y, GxV, GyV);
                const size_t I = static_cast<size_t>(Y) * W + X;
                Gx[P][I] = static_cast<float>(GxV);
                Gy[P][I] = static_cast<float>(GyV);
              }
            WorkMeter::global().add(PartUnitsPerPixel * W * (Y1 - Y0));
          },
          std::move(Opts));
    };
    SpawnPart(0, /*Significance=*/1.0, [&](int X, int Y, double &GxV,
                                           double &GyV) {
      blockA<double>(In.clamped(X - 1, Y), In.clamped(X + 1, Y),
                     In.clamped(X, Y - 1), In.clamped(X, Y + 1), GxV, GyV);
    });
    SpawnPart(1, /*Significance=*/0.5, [&](int X, int Y, double &GxV,
                                           double &GyV) {
      blockB<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxV, GyV);
    });
    SpawnPart(2, /*Significance=*/0.5, [&](int X, int Y, double &GxV,
                                           double &GyV) {
      blockC<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxV, GyV);
    });
  }
  RT.taskwait("sobel.conv", Ratio);

  // Second group: always accurate (high significance for the output).
  Image Out(W, H);
  for (int Y0 = 0; Y0 < H; Y0 += BandRows) {
    const int Y1 = std::min(Y0 + BandRows, H);
    rt::TaskOptions Opts;
    Opts.Significance = 1.0;
    Opts.Label = "sobel.combine";
    RT.spawn(
        [&, Y0, Y1] {
          for (int Y = Y0; Y < Y1; ++Y)
            for (int X = 0; X < W; ++X) {
              const size_t I = static_cast<size_t>(Y) * W + X;
              const double GxS = double(Gx[0][I]) + Gx[1][I] + Gx[2][I];
              const double GyS = double(Gy[0][I]) + Gy[1][I] + Gy[2][I];
              Out.at(X, Y) = clampToByte(combine<double>(GxS, GyS));
            }
          WorkMeter::global().add(CombineUnitsPerPixel * W * (Y1 - Y0));
        },
        std::move(Opts));
  }
  RT.taskwait("sobel.combine", 1.0);
  return Out;
}

Image scorpio::apps::sobelPerforated(const Image &In, double Rate) {
  assert(Rate >= 0.0 && Rate <= 1.0 && "rate out of [0, 1]");
  const int W = In.width(), H = In.height();
  Image Out(W, H);
  int LastComputed = -1;
  double Acc = 0.0;
  for (int Y = 0; Y < H; ++Y) {
    Acc += Rate;
    const bool Execute = Acc >= 1.0 - 1e-12 || (Y == 0 && Rate > 0.0);
    if (Execute)
      Acc -= 1.0;
    if (!Execute) {
      // Skipped iteration: replicate the nearest computed row (the
      // charitable reading of perforation for image outputs).
      for (int X = 0; X < W; ++X)
        Out.at(X, Y) = LastComputed >= 0 ? Out.at(X, LastComputed) : 0;
      continue;
    }
    for (int X = 0; X < W; ++X) {
      double GxA, GyA, GxB, GyB, GxC, GyC;
      blockA<double>(In.clamped(X - 1, Y), In.clamped(X + 1, Y),
                     In.clamped(X, Y - 1), In.clamped(X, Y + 1), GxA, GyA);
      blockB<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxB, GyB);
      blockC<double>(In.clamped(X - 1, Y - 1), In.clamped(X + 1, Y - 1),
                     In.clamped(X - 1, Y + 1), In.clamped(X + 1, Y + 1),
                     GxC, GyC);
      Out.at(X, Y) = clampToByte(
          combine<double>(GxA + GxB + GxC, GyA + GyB + GyC));
    }
    WorkMeter::global().add(
        (3.0 * PartUnitsPerPixel + CombineUnitsPerPixel) * W);
    LastComputed = Y;
  }
  return Out;
}

SobelBlockSignificance scorpio::apps::analyseSobelBlocks(const Image &In,
                                                         int X, int Y,
                                                         double HalfWidth) {
  assert(In.inBounds(X, Y) && "analysis pixel out of bounds");
  Analysis A;
  A.tape().reserve(64);
  auto Input = [&](int DX, int DY, const char *Name) {
    const double P = In.clamped(X + DX, Y + DY);
    return A.input(Name, P - HalfWidth, P + HalfWidth);
  };
  IAValue NW = Input(-1, -1, "nw"), N = Input(0, -1, "n"),
          NE = Input(1, -1, "ne");
  IAValue W = Input(-1, 0, "w"), E = Input(1, 0, "e");
  IAValue SW = Input(-1, 1, "sw"), S = Input(0, 1, "s"),
          SE = Input(1, 1, "se");

  IAValue GxA, GyA, GxB, GyB, GxC, GyC;
  blockA<IAValue>(W, E, N, S, GxA, GyA);
  blockB<IAValue>(NW, NE, SW, SE, GxB, GyB);
  blockC<IAValue>(NW, NE, SW, SE, GxC, GyC);
  // Block B contributes only to Gx and block C only to Gy; their other
  // component is the passive constant 0 and carries no node.
  A.registerIntermediate(GxA, "Ax");
  A.registerIntermediate(GyA, "Ay");
  A.registerIntermediate(GxB, "Bx");
  A.registerIntermediate(GyC, "Cy");

  // The blocks feed the convolution-stage outputs Gx/Gy (the level-1
  // nodes the paper partitions at); the magnitude+clip stage forms the
  // second, always-accurate task group.  Registering Gx/Gy as the
  // analysis outputs keeps the adjoints finite even where the gradient
  // enclosure touches zero (sqrt'(0) is unbounded).
  IAValue Gx = GxA + GxB + GxC;
  IAValue Gy = GyA + GyB + GyC;
  A.registerOutput(Gx, "gx");
  A.registerOutput(Gy, "gy");

  SobelBlockSignificance Sig;
  AnalysisOptions Opts;
  Opts.Mode = AnalysisOptions::OutputMode::PerOutput;
  Sig.Result = A.analyse(Opts);
  auto SigOf = [&](const char *Name) {
    const VariableSignificance *V = Sig.Result.find(Name);
    assert(V && "registered variable missing");
    return V ? V->Significance : 0.0;
  };
  Sig.A = SigOf("Ax") + SigOf("Ay");
  Sig.B = SigOf("Bx");
  Sig.C = SigOf("Cy");
  return Sig;
}

namespace {

/// Records every pixel of the tile [X0, X1) x [Y0, Y1) into the current
/// thread's Analysis as one DynDFG: one input per (clamped) neighborhood
/// grid position, per-pixel block intermediates Ax/Ay/Bx/Cy_<lx>_<ly>
/// and per-pixel outputs gx/gy_<lx>_<ly> (local tile coordinates).
void recordSobelTile(const Image &In, int X0, int Y0, int X1, int Y1,
                     double HalfWidth) {
  Analysis &A = Analysis::current();
  const int GW = X1 - X0 + 2, GH = Y1 - Y0 + 2;
  std::vector<IAValue> Grid(static_cast<size_t>(GW) * GH);
  for (int GY = Y0 - 1; GY <= Y1; ++GY)
    for (int GX = X0 - 1; GX <= X1; ++GX) {
      const int LX = GX - (X0 - 1), LY = GY - (Y0 - 1);
      const double P = In.clamped(GX, GY);
      Grid[static_cast<size_t>(LY) * GW + LX] =
          A.input("p" + std::to_string(LX) + "_" + std::to_string(LY),
                  P - HalfWidth, P + HalfWidth);
    }
  auto At = [&](int GX, int GY) -> const IAValue & {
    return Grid[static_cast<size_t>(GY - (Y0 - 1)) * GW + (GX - (X0 - 1))];
  };

  for (int Y = Y0; Y < Y1; ++Y)
    for (int X = X0; X < X1; ++X) {
      const std::string Suffix = "_" + std::to_string(X - X0) + "_" +
                                 std::to_string(Y - Y0);
      IAValue GxA, GyA, GxB, GyB, GxC, GyC;
      blockA<IAValue>(At(X - 1, Y), At(X + 1, Y), At(X, Y - 1),
                      At(X, Y + 1), GxA, GyA);
      blockB<IAValue>(At(X - 1, Y - 1), At(X + 1, Y - 1), At(X - 1, Y + 1),
                      At(X + 1, Y + 1), GxB, GyB);
      blockC<IAValue>(At(X - 1, Y - 1), At(X + 1, Y - 1), At(X - 1, Y + 1),
                      At(X + 1, Y + 1), GxC, GyC);
      A.registerIntermediate(GxA, "Ax" + Suffix);
      A.registerIntermediate(GyA, "Ay" + Suffix);
      A.registerIntermediate(GxB, "Bx" + Suffix);
      A.registerIntermediate(GyC, "Cy" + Suffix);
      IAValue Gx = GxA + GxB + GxC;
      IAValue Gy = GyA + GyB + GyC;
      A.registerOutput(Gx, "gx" + Suffix);
      A.registerOutput(Gy, "gy" + Suffix);
    }
}

} // namespace

SobelTileSignificance scorpio::apps::analyseSobelTiles(
    const Image &In, int TileSize, double HalfWidth, unsigned NumThreads,
    ShardVerification Verify) {
  assert(TileSize > 0 && "tile must contain pixels");
  const int W = In.width(), H = In.height();

  ParallelAnalysis P;
  for (int Y0 = 0; Y0 < H; Y0 += TileSize)
    for (int X0 = 0; X0 < W; X0 += TileSize) {
      const int X1 = std::min(X0 + TileSize, W);
      const int Y1 = std::min(Y0 + TileSize, H);
      const size_t NumPx =
          static_cast<size_t>(X1 - X0) * static_cast<size_t>(Y1 - Y0);
      const size_t Hint =
          static_cast<size_t>(X1 - X0 + 2) * (Y1 - Y0 + 2) + 20 * NumPx;
      P.addShard("tile_" + std::to_string(X0 / TileSize) + "_" +
                     std::to_string(Y0 / TileSize),
                 [&In, X0, Y0, X1, Y1, HalfWidth] {
                   recordSobelTile(In, X0, Y0, X1, Y1, HalfWidth);
                 },
                 Hint);
    }

  AnalysisOptions Opts;
  Opts.Mode = AnalysisOptions::OutputMode::PerOutput;

  SobelTileSignificance Sig;
  Sig.Result = P.run(Opts, NumThreads, Verify);
  for (const ShardResult &S : Sig.Result.shards())
    for (const VariableSignificance &V : S.Result.intermediates()) {
      if (V.Name.compare(0, 2, "Ax") == 0 ||
          V.Name.compare(0, 2, "Ay") == 0)
        Sig.A += V.Significance;
      else if (V.Name.compare(0, 2, "Bx") == 0)
        Sig.B += V.Significance;
      else if (V.Name.compare(0, 2, "Cy") == 0)
        Sig.C += V.Significance;
    }
  return Sig;
}
