//===- apps/dct/Dct.cpp - DCT pipeline benchmark --------------------------===//

#include "apps/dct/Dct.h"

#include "energy/Energy.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace scorpio;
using namespace scorpio::apps;

namespace {

/// Work-unit charges.
constexpr double CoefUnits = 64.0;           // one direct DCT coefficient
constexpr double ReconUnitsPerBlock = 64.0 * 18.0; // quant+dequant+IDCT

/// cos((2i+1) * k * pi / 16) premultiplied by the orthonormal alpha(k).
struct DctTables {
  double Basis[8][8]; // Basis[i][k]
  DctTables() {
    for (int K = 0; K < 8; ++K) {
      const double Alpha =
          K == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
      for (int I = 0; I < 8; ++I)
        Basis[I][K] =
            Alpha * std::cos((2.0 * I + 1.0) * K * M_PI / 16.0);
    }
  }
};

const DctTables &tables() {
  static const DctTables T;
  return T;
}

/// One forward-DCT coefficient of an 8x8 block (direct 2D form — the
/// doubly nested loop the paper perforates).
template <typename T>
T dctCoefficient(const T Block[64], int U, int V) {
  const DctTables &Tab = tables();
  T Sum = 0.0;
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X)
      Sum = Sum + Block[Y * 8 + X] * (Tab.Basis[X][U] * Tab.Basis[Y][V]);
  return Sum;
}

/// Quantize + de-quantize one coefficient with step \p Q.
template <typename T> T quantDequant(const T &C, double Q) {
  using std::round;
  T Quantized = round(C / Q);
  return Quantized * Q;
}

/// Separable double-precision IDCT of one block of de-quantized
/// coefficients (the always-accurate reconstruction stage).
void idctBlock(const double Coef[64], double Pixels[64]) {
  const DctTables &Tab = tables();
  double Tmp[64];
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X) {
      double S = 0.0;
      for (int U = 0; U < 8; ++U)
        S += Coef[Y * 8 + U] * Tab.Basis[X][U];
      Tmp[Y * 8 + X] = S;
    }
  for (int X = 0; X < 8; ++X)
    for (int Y = 0; Y < 8; ++Y) {
      double S = 0.0;
      for (int V = 0; V < 8; ++V)
        S += Tmp[V * 8 + X] * Tab.Basis[Y][V];
      Pixels[Y * 8 + X] = S;
    }
}

/// Loads one 8x8 block (level-shifted by -128, as in JPEG).
void loadBlock(const Image &In, int BX, int BY, double Block[64]) {
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X)
      Block[Y * 8 + X] =
          static_cast<double>(In.clamped(BX * 8 + X, BY * 8 + Y)) - 128.0;
}

/// Reconstructs one block from de-quantized coefficients into the image.
void reconstructBlock(Image &Out, int BX, int BY, const double Coef[64]) {
  double Pixels[64];
  idctBlock(Coef, Pixels);
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X) {
      const int PX = BX * 8 + X, PY = BY * 8 + Y;
      if (Out.inBounds(PX, PY))
        Out.at(PX, PY) = clampToByte(Pixels[Y * 8 + X] + 128.0);
    }
}

} // namespace

std::array<int, 64> scorpio::apps::jpegQuantTable(int Quality) {
  assert(Quality >= 1 && Quality <= 100 && "quality out of [1, 100]");
  // JPEG Annex K.1 luminance table.
  static const int Base[64] = {
      16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,
      55, 14, 13, 16, 24,  40,  57,  69,  56, 14, 17, 22, 29,  51,  87,
      80, 62, 18, 22, 37,  56,  68,  109, 103, 77, 24, 35, 55,  64,  81,
      104, 113, 92, 49, 64, 78,  87,  103, 121, 120, 101, 72, 92, 95,  98,
      112, 100, 103, 99};
  const int Scale = Quality < 50 ? 5000 / Quality : 200 - 2 * Quality;
  std::array<int, 64> Table;
  for (int I = 0; I < 64; ++I)
    Table[static_cast<size_t>(I)] =
        std::clamp((Base[I] * Scale + 50) / 100, 1, 255);
  return Table;
}

const std::array<std::pair<int, int>, 64> &scorpio::apps::zigzagOrder() {
  static const std::array<std::pair<int, int>, 64> Order = [] {
    std::array<std::pair<int, int>, 64> O;
    int I = 0;
    for (int D = 0; D < 15; ++D) {
      if (D % 2 == 0) {
        for (int V = std::min(D, 7); V >= std::max(0, D - 7); --V)
          O[static_cast<size_t>(I++)] = {D - V, V};
      } else {
        for (int U = std::min(D, 7); U >= std::max(0, D - 7); --U)
          O[static_cast<size_t>(I++)] = {U, D - U};
      }
    }
    return O;
  }();
  return Order;
}

void scorpio::apps::dctBlockTransform(const double Block[64],
                                      double Coef[64]) {
  for (int V = 0; V < 8; ++V)
    for (int U = 0; U < 8; ++U)
      Coef[V * 8 + U] = dctCoefficient<double>(Block, U, V);
}

void scorpio::apps::idctBlockTransform(const double Coef[64],
                                       double Block[64]) {
  idctBlock(Coef, Block);
}

Image scorpio::apps::dctReference(const Image &In, int Quality) {
  const std::array<int, 64> QT = jpegQuantTable(Quality);
  const int BW = (In.width() + 7) / 8, BH = (In.height() + 7) / 8;
  Image Out(In.width(), In.height());
  for (int BY = 0; BY < BH; ++BY)
    for (int BX = 0; BX < BW; ++BX) {
      double Block[64], Coef[64];
      loadBlock(In, BX, BY, Block);
      for (int V = 0; V < 8; ++V)
        for (int U = 0; U < 8; ++U)
          Coef[V * 8 + U] = dctCoefficient<double>(Block, U, V);
      for (int I = 0; I < 64; ++I)
        Coef[I] = quantDequant<double>(Coef[I],
                                       QT[static_cast<size_t>(I % 8 +
                                                              (I / 8) * 8)]);
      reconstructBlock(Out, BX, BY, Coef);
    }
  WorkMeter::global().add(
      static_cast<double>(BW) * BH * (64.0 * CoefUnits + ReconUnitsPerBlock));
  return Out;
}

Image scorpio::apps::dctTasks(rt::TaskRuntime &RT, const Image &In,
                              double Ratio, int Quality) {
  const std::array<int, 64> QT = jpegQuantTable(Quality);
  const int BW = (In.width() + 7) / 8, BH = (In.height() + 7) / 8;
  const size_t NumBlocks = static_cast<size_t>(BW) * BH;
  // Coefficients for every block; dropped diagonals stay zero.
  std::vector<double> Coef(NumBlocks * 64, 0.0);

  // Stage 1: one task per coefficient anti-diagonal.
  for (int D = 0; D < 15; ++D) {
    rt::TaskOptions Opts;
    Opts.Significance = dctDiagonalSignificance(D);
    Opts.Label = "dct.coef";
    RT.spawn(
        [&, D] {
          int NumCoef = 0;
          for (int BY = 0; BY < BH; ++BY)
            for (int BX = 0; BX < BW; ++BX) {
              double Block[64];
              loadBlock(In, BX, BY, Block);
              double *C =
                  &Coef[(static_cast<size_t>(BY) * BW + BX) * 64];
              for (int U = std::max(0, D - 7); U <= std::min(D, 7); ++U) {
                const int V = D - U;
                C[V * 8 + U] = dctCoefficient<double>(Block, U, V);
                ++NumCoef;
              }
            }
          WorkMeter::global().add(CoefUnits * NumCoef);
        },
        std::move(Opts));
  }
  RT.taskwait("dct.coef", Ratio);

  // Stage 2: quantize/de-quantize/IDCT — always accurate (one task per
  // block row).
  Image Out(In.width(), In.height());
  for (int BY = 0; BY < BH; ++BY) {
    rt::TaskOptions Opts;
    Opts.Significance = 1.0;
    Opts.Label = "dct.recon";
    RT.spawn(
        [&, BY] {
          for (int BX = 0; BX < BW; ++BX) {
            double C[64];
            const double *Src =
                &Coef[(static_cast<size_t>(BY) * BW + BX) * 64];
            for (int I = 0; I < 64; ++I)
              C[I] = quantDequant<double>(Src[I],
                                          QT[static_cast<size_t>(I)]);
            reconstructBlock(Out, BX, BY, C);
          }
          WorkMeter::global().add(ReconUnitsPerBlock * BW);
        },
        std::move(Opts));
  }
  RT.taskwait("dct.recon", 1.0);
  return Out;
}

int scorpio::apps::dctCoefficientsAtRatio(double Ratio) {
  assert(Ratio >= 0.0 && Ratio <= 1.0 && "ratio out of [0, 1]");
  const int NumDiagonals =
      static_cast<int>(std::ceil(Ratio * 15.0 - 1e-9));
  auto DiagonalSize = [](int D) { return D < 8 ? D + 1 : 15 - D; };
  int Count = 0;
  for (int D = 0; D < NumDiagonals; ++D)
    Count += DiagonalSize(D);
  if (NumDiagonals == 0)
    Count = DiagonalSize(0); // the forced-accurate DC diagonal
  return Count;
}

Image scorpio::apps::dctPerforated(const Image &In, double Rate,
                                   int Quality) {
  assert(Rate >= 0.0 && Rate <= 1.0 && "rate out of [0, 1]");
  const std::array<int, 64> QT = jpegQuantTable(Quality);
  const int BW = (In.width() + 7) / 8, BH = (In.height() + 7) / 8;
  const int NumExecuted =
      static_cast<int>(std::ceil(Rate * 64.0 - 1e-9));
  Image Out(In.width(), In.height());
  for (int BY = 0; BY < BH; ++BY)
    for (int BX = 0; BX < BW; ++BX) {
      double Block[64], Coef[64] = {};
      loadBlock(In, BX, BY, Block);
      // Perforate the doubly nested coefficient loop: only the first
      // NumExecuted (u, v) iterations in raster order run.
      int Iter = 0;
      for (int V = 0; V < 8 && Iter < NumExecuted; ++V)
        for (int U = 0; U < 8 && Iter < NumExecuted; ++U, ++Iter)
          Coef[V * 8 + U] = dctCoefficient<double>(Block, U, V);
      for (int I = 0; I < 64; ++I)
        Coef[I] = quantDequant<double>(Coef[I], QT[static_cast<size_t>(I)]);
      reconstructBlock(Out, BX, BY, Coef);
      WorkMeter::global().add(CoefUnits * NumExecuted +
                              ReconUnitsPerBlock);
    }
  return Out;
}

void scorpio::apps::recordDctPipeline(const Image &In, int BlockX,
                                      int BlockY, int Quality,
                                      double HalfWidth) {
  const std::array<int, 64> QT = jpegQuantTable(Quality);
  double Block[64];
  loadBlock(In, BlockX, BlockY, Block);

  Analysis &A = Analysis::current();
  // 64 inputs + ~128 nodes per coefficient + quant/dequant + ~128 nodes
  // per reconstructed pixel: ~17k nodes total.
  A.tape().reserve(17000);
  IAValue Pixels[64];
  for (int I = 0; I < 64; ++I)
    Pixels[I] = A.input("p" + std::to_string(I), Block[I] - HalfWidth,
                        Block[I] + HalfWidth);

  IAValue Dequant[64];
  for (int V = 0; V < 8; ++V)
    for (int U = 0; U < 8; ++U) {
      IAValue C = dctCoefficient<IAValue>(Pixels, U, V);
      // Register the *pre-quantization* coefficient: this is the value a
      // dropped diagonal task would fail to produce.  Its adjoint flows
      // back through quantize/de-quantize, whose rounding attenuates or
      // swallows perturbations per the quantization step Q(u, v).
      A.registerIntermediate(
          C, "c_" + std::to_string(U) + "_" + std::to_string(V));
      Dequant[V * 8 + U] =
          quantDequant<IAValue>(C, QT[static_cast<size_t>(V * 8 + U)]);
    }

  // Direct-form IDCT so the whole pipeline is on the tape.
  const DctTables &Tab = tables();
  for (int Y = 0; Y < 8; ++Y)
    for (int X = 0; X < 8; ++X) {
      IAValue S = 0.0;
      for (int V = 0; V < 8; ++V)
        for (int U = 0; U < 8; ++U)
          S = S + Dequant[V * 8 + U] * (Tab.Basis[X][U] * Tab.Basis[Y][V]);
      A.registerOutput(S, "out" + std::to_string(Y * 8 + X));
    }
}

DctSignificanceMap scorpio::apps::analyseDct(const Image &In, int BlockX,
                                             int BlockY, int Quality,
                                             double HalfWidth) {
  Analysis A;
  recordDctPipeline(In, BlockX, BlockY, Quality, HalfWidth);

  AnalysisOptions Opts;
  Opts.Mode = AnalysisOptions::OutputMode::PerOutput;
  DctSignificanceMap Map;
  Map.Result = A.analyse(Opts);

  double MaxSig = 0.0;
  for (int V = 0; V < 8; ++V)
    for (int U = 0; U < 8; ++U) {
      const VariableSignificance *VS = Map.Result.find(
          "c_" + std::to_string(U) + "_" + std::to_string(V));
      assert(VS && "coefficient not registered");
      Map.Sig[V][U] = VS->Significance;
      MaxSig = std::max(MaxSig, Map.Sig[V][U]);
    }
  if (MaxSig > 0.0)
    for (int V = 0; V < 8; ++V)
      for (int U = 0; U < 8; ++U)
        Map.Sig[V][U] /= MaxSig;
  return Map;
}
