//===- apps/dct/Dct.h - DCT video-compression kernel benchmark ------------===//
//
// Part of the scorpio project: reproduction of "Towards Automatic
// Significance Analysis for Approximate Computing" (CGO 2016).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DCT benchmark of Section 4.1.2: the compression core of a video
/// codec — forward 8x8 DCT, JPEG-style quantization, de-quantization and
/// inverse DCT — evaluated on full images.  Quality is the PSNR of the
/// reconstructed image versus the fully accurate reconstruction.
///
/// Task structure follows the paper: the coefficient computation is
/// partitioned into 15 tasks, one per anti-diagonal u + v = d of the 8x8
/// coefficient block (across all blocks of the image).  Task
/// significances decrease with d; the DC diagonal is pinned to 1.0.
/// Approximation drops a diagonal's coefficients (they stay zero).  The
/// quantize/de-quantize/IDCT stage is a second, always-accurate group.
///
/// The significance analysis (Figure 4) runs the *whole* pipeline on one
/// block with interval inputs and reports the significance of each
/// de-quantized coefficient for the 64 reconstructed pixels; the JPEG
/// quantization table is what shapes the zig-zag pattern — coarse
/// quantization steps swallow input perturbations, zeroing the interval
/// width of high-frequency coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef SCORPIO_APPS_DCT_DCT_H
#define SCORPIO_APPS_DCT_DCT_H

#include "core/Analysis.h"
#include "quality/Image.h"
#include "runtime/TaskRuntime.h"

#include <array>

namespace scorpio {
namespace apps {

/// The JPEG Annex-K luminance quantization table scaled to \p Quality
/// (1-100, 50 = the standard table).
std::array<int, 64> jpegQuantTable(int Quality);

/// The task significance assigned to diagonal \p D (0-14): 1.0 for the
/// DC diagonal, then linearly decreasing.
inline double dctDiagonalSignificance(int D) {
  return D == 0 ? 1.0 : (15.0 - D) / 16.0;
}

/// Fully accurate DCT -> quantize -> dequantize -> IDCT pipeline.
Image dctReference(const Image &In, int Quality = 50);

/// Significance-driven task version; equals dctReference at Ratio == 1.
Image dctTasks(rt::TaskRuntime &RT, const Image &In, double Ratio,
               int Quality = 50);

/// Loop-perforated baseline: per block, only the first Rate fraction of
/// the doubly nested (u, v) coefficient loop executes (raster order) —
/// paper Section 4.2.
Image dctPerforated(const Image &In, double Rate, int Quality = 50);

/// Number of coefficients per 8x8 block that dctTasks computes at
/// taskwait ratio \p Ratio (the ceil(Ratio*15) most significant
/// diagonals, plus the forced-accurate DC diagonal).  Used to give the
/// perforation baseline the same computation budget ("the same
/// percentage of computations is skipped", Section 4.2).
int dctCoefficientsAtRatio(double Ratio);

/// Figure 4: the 8x8 significance map of the frequency coefficients for
/// the reconstructed block, normalized so the maximum is 1.  Each entry
/// is the significance of the coefficient *computation* (the pre-
/// quantization DCT node — what a dropped diagonal task would not
/// compute); the downstream quantization attenuates or swallows the
/// high-frequency entries, producing the zig-zag wave.
struct DctSignificanceMap {
  double Sig[8][8] = {};
  AnalysisResult Result;
};

/// Analyses the pipeline on the 8x8 block whose top-left pixel is
/// (BlockX*8, BlockY*8), with each input pixel in [p - HalfWidth,
/// p + HalfWidth].
DctSignificanceMap analyseDct(const Image &In, int BlockX, int BlockY,
                              int Quality = 50, double HalfWidth = 2.0);

/// Records the full DCT -> quantize -> dequantize -> IDCT pipeline of
/// one 8x8 block (64 inputs p0..p63, coefficient intermediates c_U_V,
/// 64 outputs out0..out63) into the innermost live Analysis.  Shared by
/// analyseDct and sharded per-block drivers.
void recordDctPipeline(const Image &In, int BlockX, int BlockY,
                       int Quality = 50, double HalfWidth = 2.0);

/// Forward 8x8 DCT-II of a (level-shifted) block into 64 coefficients —
/// the orthonormal transform the pipeline uses, exposed for tests and
/// downstream users (Parseval, invertibility).
void dctBlockTransform(const double Block[64], double Coef[64]);

/// Inverse 8x8 DCT of 64 coefficients back to pixel values.
void idctBlockTransform(const double Coef[64], double Block[64]);

/// The JPEG zig-zag scan order: ZigZag[i] = (u, v) of the i-th visited
/// coefficient.
const std::array<std::pair<int, int>, 64> &zigzagOrder();

} // namespace apps
} // namespace scorpio

#endif // SCORPIO_APPS_DCT_DCT_H
